type costs = {
  send_cpu_fixed : float;
  send_cpu_per_byte : float;
  recv_cpu_fixed : float;
  recv_cpu_per_byte : float;
  dispatch_cpu : float;
}

(* Calibrated (together with packet wire times) against the ~2.6 ms null
   RPC reported for the Firefly [Schroeder & Burrows 89]. *)
let default_costs =
  {
    send_cpu_fixed = 1.0e-3;
    send_cpu_per_byte = 0.4e-6;
    recv_cpu_fixed = 1.0e-3;
    recv_cpu_per_byte = 0.4e-6;
    dispatch_cpu = 0.1e-3;
  }

type endpoint = {
  task : Task.t;
  queue : (unit -> unit) Queue.t;
  mutable idle : (unit -> unit) list;  (* wakers of parked server threads *)
}

type reliability_counters = {
  timeouts : Sim.Stats.Counter.t;
  retransmits : Sim.Stats.Counter.t;
  dup_requests : Sim.Stats.Counter.t;
  dup_replies : Sim.Stats.Counter.t;
  dup_datagrams : Sim.Stats.Counter.t;
  reply_resends : Sim.Stats.Counter.t;
  acks_sent : Sim.Stats.Counter.t;
}

let fresh_reliability_counters () =
  {
    timeouts = Sim.Stats.Counter.create ~name:"timeouts" ();
    retransmits = Sim.Stats.Counter.create ~name:"retransmits" ();
    dup_requests = Sim.Stats.Counter.create ~name:"dup-requests" ();
    dup_replies = Sim.Stats.Counter.create ~name:"dup-replies" ();
    dup_datagrams = Sim.Stats.Counter.create ~name:"dup-datagrams" ();
    reply_resends = Sim.Stats.Counter.create ~name:"reply-resends" ();
    acks_sent = Sim.Stats.Counter.create ~name:"acks" ();
  }

(* Server-side progress of a sequence-numbered call: [Started] while the
   work executes (duplicate requests are suppressed), [Answered resend]
   after the reply went out (a duplicate request means the reply was
   probably lost, so it is retransmitted). *)
type call_progress = Started | Answered of (unit -> unit)

exception Node_dead of { node : int }

let () =
  Printexc.register_printer (function
    | Node_dead { node } ->
      Some
        (Printf.sprintf
           "Rpc.Node_dead { node = %d } (peer exhausted its retransmit \
            budget or was reported crashed)"
           node)
    | _ -> None)

(* One in-flight reliable transaction.  [oabort] is invoked by
   {!mark_node_dead}: [`Dst_dead] fails the sender with {!Node_dead} now
   rather than after the full retransmit budget; [`Src_dead] just
   silences the retransmit timer (a dead node stops transmitting — its
   caller thread dies with it, separately). *)
type outstanding = {
  osrc : int;
  odst : int;
  oabort : [ `Src_dead | `Dst_dead ] -> unit;
}

(* --- wire-level datagram coalescing --------------------------------- *)

type coalesce = {
  flush_window : float;
  max_msg_bytes : int;
  max_frame_bytes : int;
}

let default_coalesce =
  { flush_window = 200e-6; max_msg_bytes = 128; max_frame_bytes = 1472 }

type coalescing_counters = {
  coal_eligible : int;
  coal_batched : int;
  coal_frames : int;
}

(* An open per-(src,dst) accumulation of small datagrams awaiting the
   flush timer.  [items] newest-first; [bytes] is the frame payload
   accumulated so far (headers included). *)
type pending_batch = {
  mutable items :
    (int * int * string * (unit -> unit) * (float -> unit) option) list;
      (* seq, size, kind, deliver *)
  mutable pbytes : int;
  mutable ptimer : Sim.Engine.event_id option;
}

(* Framed packet: an 8-byte frame header plus a 4-byte per-message
   header (length + kind tag) in front of each payload. *)
let frame_header_bytes = 8
let msg_header_bytes = 4

type t = {
  ether : Hw.Ethernet.t;
  endpoints : endpoint array;
  c : costs;
  (* Reliability layer (only active when [reliable]; with it off the
     fabric is wire-transparent and behaves exactly like the original
     at-most-once transport). *)
  reliable : bool;
  rto : float;  (* initial retransmission timeout *)
  rel : reliability_counters;
  mutable seq : int;
  call_state : (int, call_progress) Hashtbl.t;
  delivered : (int, unit) Hashtbl.t;  (* one-way datagrams already executed *)
  (* Ack-acknowledged retirement of [delivered] entries: once the sender
     has seen the ack it stops retransmitting, so the entry is dead as
     soon as every copy it ever put on the wire has arrived or been
     dropped.  A count window alone is NOT enough: on a saturated medium
     a retransmit can sit queued longer than [retire_window] younger
     acks take to accumulate, so each queue entry also carries the
     arrival horizon — the latest predicted delivery of any copy of that
     seq (plus fault slack) — and is only evicted once the horizon has
     passed. *)
  retire_q : (int * float) Queue.t;  (* (seq, arrival horizon) *)
  retire_window : int;
  mutable retire_armed : bool;  (* horizon timer for the queue head *)
  (* The pre-fix PR-6 eviction policy: retire dedup entries on the count
     window alone, ignoring the arrival horizon.  Unsound — a straggler
     copy arriving after eviction executes twice — and kept only behind
     this flag so the model checker can demonstrate that it finds the
     bug ([amber_sim check --mutate dedup-count-window]). *)
  unsafe_dedup : bool;
  (* Retransmission attempts after which a silent peer is declared dead
     (the transaction fails with [Node_dead] instead of backing off
     forever).  Only consulted in reliable mode. *)
  max_retransmits : int;
  (* Outstanding reliable transactions by sequence number; walked by
     [mark_node_dead].  Empty unless reliable mode is on. *)
  outstanding : (int, outstanding) Hashtbl.t;
  mutable peer_deaths : int;
  (* Peer-death watchers, fired by [mark_node_dead] after the
     outstanding-transaction aborts.  They close the window the aborts
     cannot see: a reliable datagram transport-acks at delivery, so once
     the ack lands the transaction is retired — but the application
     handler is still only {e queued} on the destination's server queue.
     If the peer dies in that window, the handshake's reply datagram is
     never posted and no outstanding transaction mentions the corpse;
     a watcher registered by the waiting side is the only way to learn
     of the death.  Keyed by watched node; each entry keeps its
     registration id so firing order is deterministic. *)
  watchers : (int, (int * (exn -> unit)) list) Hashtbl.t;
  mutable next_watch : int;
  (* The server-pool fibers, per node, for the crash injector: a
     fail-stopped node freezes them mid-handler and they never unwind,
     so recovery has to retire whatever spans they hold open. *)
  server_tcbs : Hw.Machine.tcb list array;
  coalesce : coalesce option;
  pending : (int * int, pending_batch) Hashtbl.t;  (* (src,dst) -> batch *)
  mutable coal_eligible : int;
  mutable coal_batched : int;
  mutable coal_frames : int;
  spans : Sim.Span.t;
  mutable calls : int;
  mutable posts : int;
  (* Server-pool admission control (Amber-Serve).  Consulted at the
     destination, right before a one-way datagram's handler would be
     queued on the server pool — but only for posts that supplied an
     [on_reject] continuation, so kernel protocol traffic (coherence,
     futures, mobility) can never be shed.  The hook must not consume
     virtual time or draw RNG: with no admission-subject posts in a run
     it contributes nothing and reports stay byte-identical. *)
  mutable admission : (dst:int -> kind:string -> bool) option;
  mutable posts_rejected : int;
}

let rec server_loop ep =
  (match Queue.take_opt ep.queue with
  | Some work -> work ()
  | None ->
    Sim.Fiber.block (fun wake -> ep.idle <- wake :: ep.idle));
  server_loop ep

let enqueue_work ep work =
  Queue.add work ep.queue;
  match ep.idle with
  | [] -> ()
  | wake :: rest ->
    ep.idle <- rest;
    wake ()

let create ~ether ~tasks ?(costs = default_costs) ?(servers_per_node = 8)
    ?(reliable = false) ?(rto = 25e-3) ?(retire_window = 1024)
    ?(max_retransmits = 30) ?(unsafe_count_window_dedup = false) ?coalesce
    ?(spans = Sim.Span.disabled ()) () =
  if rto <= 0.0 then invalid_arg "Rpc.create: rto must be positive";
  if max_retransmits <= 0 then
    invalid_arg "Rpc.create: max_retransmits must be positive";
  if retire_window < 0 then
    invalid_arg "Rpc.create: retire_window must be non-negative";
  (match coalesce with
  | Some c ->
    if c.flush_window <= 0.0 then
      invalid_arg "Rpc.create: coalesce.flush_window must be positive";
    if c.max_msg_bytes <= 0 || c.max_frame_bytes <= c.max_msg_bytes then
      invalid_arg "Rpc.create: coalesce byte limits";
  | None -> ());
  let endpoints =
    Array.map
      (fun task -> { task; queue = Queue.create (); idle = [] })
      tasks
  in
  let server_tcbs =
    Array.mapi
      (fun node ep ->
        List.init servers_per_node (fun i ->
            Task.spawn ep.task
              ~name:(Printf.sprintf "rpc-server-%d.%d" node i)
              (fun () -> server_loop ep)))
      endpoints
  in
  {
    ether;
    endpoints;
    c = costs;
    reliable;
    rto;
    rel = fresh_reliability_counters ();
    seq = 0;
    call_state = Hashtbl.create 256;
    delivered = Hashtbl.create 256;
    retire_q = Queue.create ();
    retire_window;
    retire_armed = false;
    unsafe_dedup = unsafe_count_window_dedup;
    max_retransmits;
    outstanding = Hashtbl.create 16;
    peer_deaths = 0;
    watchers = Hashtbl.create 8;
    next_watch = 0;
    server_tcbs;
    coalesce;
    pending = Hashtbl.create 16;
    coal_eligible = 0;
    coal_batched = 0;
    coal_frames = 0;
    spans;
    calls = 0;
    posts = 0;
    admission = None;
    posts_rejected = 0;
  }

let costs t = t.c
let reliable_mode t = t.reliable
let reliability t = t.rel

let endpoint t node =
  if node < 0 || node >= Array.length t.endpoints then
    invalid_arg "Rpc: bad node id";
  t.endpoints.(node)

let send_side_cpu t size = t.c.send_cpu_fixed +. (t.c.send_cpu_per_byte *. float_of_int size)
let recv_side_cpu t size =
  t.c.recv_cpu_fixed +. (t.c.recv_cpu_per_byte *. float_of_int size)

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let max_backoff_exp = 6

let backoff_delay t attempts =
  t.rto *. (2.0 ** float_of_int (min attempts max_backoff_exp))

let ack_bytes = 16

(* --- the wire ------------------------------------------------------------- *)

let raw_send t ?seq ~src ~dst ~size ~kind deliver =
  Hw.Ethernet.send t.ether (Hw.Packet.make ?seq ~src ~dst ~size ~kind deliver)

(* Latest instant any copy of a packet predicted to land at [d] can still
   arrive: a stall window can hold it until the window ends, a delay
   spike adds its lag, and a fault-injected duplicate trails the original
   by one propagation.  (Under [Fifo] — the default — [d] from
   {!Hw.Ethernet.send} is exact; under [Csma_cd] it is a lower bound, and
   the count window below remains the backstop.) *)
let arrival_horizon t d =
  if Sim.Engine.chooser_active (Hw.Ethernet.engine t.ether) then
    (* Under a schedule chooser the medium may hold any copy arbitrarily
       long — there is no sound finite horizon, so dedup entries are
       simply never retired during checking. *)
    Float.infinity
  else
    let f = Hw.Ethernet.faults_in_effect t.ether in
    let d =
      List.fold_left (fun acc s -> Float.max acc s.Hw.Ethernet.until_t) d
        f.Hw.Ethernet.stalls
    in
    d +. f.Hw.Ethernet.delay_spike +. Hw.Ethernet.propagation t.ether

(* Flush the open batch for one (src,dst) pair.  A singleton goes out as
   the original packet (coalescing that message bought nothing but the
   window's latency); two or more messages ship as one framed packet
   whose delivery runs the queued callbacks in send order. *)
let flush_pair t key =
  match Hashtbl.find_opt t.pending key with
  | None -> ()
  | Some b -> (
    (match b.ptimer with
    | Some id -> Sim.Engine.cancel (Hw.Ethernet.engine t.ether) id
    | None -> ());
    b.ptimer <- None;
    Hashtbl.remove t.pending key;
    let src, dst = key in
    match List.rev b.items with
    | [] -> ()
    | [ (seq, size, kind, deliver, on_wire) ] ->
      let d = raw_send t ~seq ~src ~dst ~size ~kind deliver in
      Option.iter (fun f -> f d) on_wire
    | items ->
      t.coal_frames <- t.coal_frames + 1;
      t.coal_batched <- t.coal_batched + List.length items;
      let size =
        List.fold_left
          (fun acc (_, sz, _, _, _) -> acc + msg_header_bytes + sz)
          frame_header_bytes items
      in
      let d =
        raw_send t ~src ~dst ~size ~kind:"coal" (fun () ->
            List.iter (fun (_, _, _, deliver, _) -> deliver ()) items)
      in
      List.iter (fun (_, _, _, _, on_wire) -> Option.iter (fun f -> f d) on_wire) items)

(* Every one-way datagram leaves through here.  With coalescing off (or
   for a same-node / oversized message) this is exactly one Ethernet
   send, byte-identical to the original transport.  With it on, a small
   message parks in the per-(src,dst) batch; the first parked message
   arms the flush timer, and a message that would overflow the frame
   flushes the batch ahead of itself.  Per-pair FIFO order is preserved:
   an ineligible message first flushes whatever is parked ahead of it. *)
let wire_send t ?seq ?on_wire ~src ~dst ~size ~kind deliver =
  let raw_now ?seq () =
    let d = raw_send t ?seq ~src ~dst ~size ~kind deliver in
    Option.iter (fun f -> f d) on_wire
  in
  match t.coalesce with
  | None -> raw_now ?seq ()
  | Some c ->
    let key = (src, dst) in
    if src = dst || size > c.max_msg_bytes then begin
      flush_pair t key;
      raw_now ?seq ()
    end
    else begin
      t.coal_eligible <- t.coal_eligible + 1;
      (match Hashtbl.find_opt t.pending key with
      | Some b when b.pbytes + msg_header_bytes + size > c.max_frame_bytes ->
        flush_pair t key
      | _ -> ());
      let b =
        match Hashtbl.find_opt t.pending key with
        | Some b -> b
        | None ->
          let b = { items = []; pbytes = frame_header_bytes; ptimer = None } in
          Hashtbl.replace t.pending key b;
          b.ptimer <-
            Some
              (Sim.Engine.schedule
                 (Hw.Ethernet.engine t.ether)
                 ~delay:c.flush_window
                 (fun () ->
                   b.ptimer <- None;
                   flush_pair t key));
          b
      in
      let seq = match seq with Some s -> s | None -> -1 in
      b.items <- (seq, size, kind, deliver, on_wire) :: b.items;
      b.pbytes <- b.pbytes + msg_header_bytes + size
    end

(* --- reliable one-way datagram ------------------------------------------- *)

(* Evict dedup entries that have both fallen out of the count window and
   passed their arrival horizon.  If the head is beyond the window but a
   copy of it could still be in flight, arm a timer for the horizon
   instead of evicting — that in-flight copy is exactly the duplicate the
   table exists to suppress. *)
let rec drain_retire t =
  if Queue.length t.retire_q > t.retire_window then begin
    let seq, safe_after = Queue.peek t.retire_q in
    let eng = Hw.Ethernet.engine t.ether in
    (* Retirement mutates the receiver-side dedup table that
       [deliver_datagram] reads, so under a model checker the two do not
       commute even though they run on different nodes — tag the shared
       state so schedule exploration knows to reorder them. *)
    Sim.Engine.note_access eng "rpc:dedup";
    if t.unsafe_dedup || safe_after <= Sim.Engine.now eng then begin
      ignore (Queue.pop t.retire_q : int * float);
      Hashtbl.remove t.delivered seq;
      drain_retire t
    end
    else if (not t.retire_armed) && Float.is_finite safe_after then begin
      t.retire_armed <- true;
      ignore
        (Sim.Engine.schedule_at eng ~time:safe_after (fun () ->
             t.retire_armed <- false;
             drain_retire t)
          : Sim.Engine.event_id)
    end
  end

(* At-least-once wire delivery with receiver-side dedup, i.e. exactly-once
   execution of [deliver] (which runs in event context at [dst], like a
   bare [Hw.Ethernet.send] callback).  The receiver acks every arrival;
   the sender retransmits with exponential backoff until acked.  With the
   fabric in unreliable mode this is a plain Ethernet send. *)
let send_reliable t ?on_dead ~src ~dst ~size ~kind deliver =
  if not t.reliable then wire_send t ~src ~dst ~size ~kind deliver
  else begin
    let eng = Hw.Ethernet.engine t.ether in
    let seq = next_seq t in
    let acked = ref false in
    let timer = ref None in
    let attempts = ref 0 in
    (* Latest predicted arrival over every copy of this datagram put on
       the wire, including retransmissions still queued when the ack
       lands. *)
    let horizon = ref 0.0 in
    let cancel_timer () =
      (match !timer with
      | Some id -> Sim.Engine.cancel eng id
      | None -> ());
      timer := None
    in
    (* Give up: stop retransmitting and surface [Node_dead] carrying the
       dead party's identity through [on_dead] — the callback may live on
       either side of the wire (a future-notify's observer is at [dst]
       even when [src] is the corpse).  The [acked] guard makes this and
       the real ack mutually exclusive. *)
    let fail_dead ~dead_node =
      if not !acked then begin
        acked := true;
        cancel_timer ();
        Hashtbl.remove t.outstanding seq;
        if dead_node = dst then t.peer_deaths <- t.peer_deaths + 1;
        match on_dead with
        | Some f -> f (Node_dead { node = dead_node })
        | None -> ()
      end
    in
    let deliver_ack () =
      Sim.Engine.note_access eng "rpc:dedup";
      if not !acked then begin
        acked := true;
        cancel_timer ();
        Hashtbl.remove t.outstanding seq;
        (* The sender has the ack, so it will never retransmit this seq
           again: queue its dedup entry for retirement once the count
           window has passed AND no copy can still be in flight. *)
        Queue.add (seq, !horizon) t.retire_q;
        drain_retire t
      end
    in
    let deliver_datagram () =
      Sim.Engine.note_access eng "rpc:dedup";
      if Hashtbl.mem t.delivered seq then
        Sim.Stats.Counter.incr t.rel.dup_datagrams
      else begin
        Hashtbl.replace t.delivered seq ();
        deliver ()
      end;
      (* Ack every arrival: if the previous ack was lost, the
         retransmitted datagram re-triggers it. *)
      Sim.Stats.Counter.incr t.rel.acks_sent;
      wire_send t ~seq ~src:dst ~dst:src ~size:ack_bytes ~kind:(kind ^ "-ack")
        deliver_ack
    in
    let rec send_datagram () =
      wire_send t ~seq
        ~on_wire:(fun d -> horizon := Float.max !horizon (arrival_horizon t d))
        ~src ~dst ~size ~kind deliver_datagram;
      arm ()
    and arm () =
      let thunk () =
        timer := None;
        if not !acked then begin
          if !attempts >= t.max_retransmits then fail_dead ~dead_node:dst
          else begin
            Sim.Stats.Counter.incr t.rel.timeouts;
            Sim.Stats.Counter.incr t.rel.retransmits;
            incr attempts;
            send_datagram ()
          end
        end
      in
      let delay = backoff_delay t !attempts in
      timer :=
        Some
          (if Sim.Engine.chooser_active eng then
             Sim.Engine.schedule eng
               ~key:(Printf.sprintf "net:n%d" src)
               ~label:(Printf.sprintf "rto %s %d>%d seq%d" kind src dst seq)
               ~delay thunk
           else Sim.Engine.schedule eng ~delay thunk)
    in
    Hashtbl.replace t.outstanding seq
      {
        osrc = src;
        odst = dst;
        oabort =
          (function
          | `Dst_dead -> fail_dead ~dead_node:dst
          | `Src_dead -> fail_dead ~dead_node:src);
      };
    send_datagram ()
  end

(* --- request/reply -------------------------------------------------------- *)

let call t ~dst ~kind ~req_size ~work =
  t.calls <- t.calls + 1;
  let src = Hw.Machine.id (Hw.Machine.self_machine ()) in
  if src = dst then begin
    (* Local short-circuit: no wire, but the dispatch path still runs. *)
    Sim.Fiber.consume t.c.dispatch_cpu;
    let _size, result = work () in
    result
  end
  else if not t.reliable then begin
    let csp = Sim.Span.start t.spans Sim.Span.Rpc_call ~label:kind ~arg:dst () in
    Sim.Fiber.consume (send_side_cpu t req_size);
    let result = ref None in
    let fsp =
      Sim.Span.start_flow t.spans Sim.Span.Net_flight ~label:kind ~parent:csp
        ~arg:dst ()
    in
    Sim.Fiber.block (fun wake ->
        let deliver_request () =
          Sim.Span.finish t.spans fsp;
          enqueue_work (endpoint t dst) (fun () ->
              (* Runs in a server fiber on [dst]. *)
              Sim.Fiber.consume (recv_side_cpu t req_size +. t.c.dispatch_cpu);
              let ssp =
                Sim.Span.start t.spans Sim.Span.Rpc_server ~label:kind
                  ~parent:csp ()
              in
              let reply_size, value = work () in
              Sim.Fiber.consume (send_side_cpu t reply_size);
              Sim.Span.finish t.spans ssp;
              let rsp =
                Sim.Span.start_flow t.spans Sim.Span.Net_flight
                  ~label:(kind ^ "-reply") ~parent:csp ~arg:src ()
              in
              let deliver_reply () =
                Sim.Span.finish t.spans rsp;
                result := Some value;
                wake ()
              in
              ignore
                (Hw.Ethernet.send t.ether
                   (Hw.Packet.make ~src:dst ~dst:src ~size:reply_size
                      ~kind:(kind ^ "-reply") deliver_reply)
                  : float))
        in
        ignore
          (Hw.Ethernet.send t.ether
             (Hw.Packet.make ~src ~dst ~size:req_size ~kind deliver_request)
            : float));
    (* Back on the caller: unmarshal the reply. *)
    Sim.Fiber.consume (recv_side_cpu t 0);
    Sim.Span.finish t.spans csp;
    match !result with
    | Some v -> v
    | None -> assert false
  end
  else begin
    (* Reliable mode: the request carries a sequence number and is
       retransmitted with exponential backoff until a reply arrives (the
       reply is the request's implicit ack).  The server runs [work] at
       most once per sequence number: a duplicate request arriving while
       the work executes is suppressed, and one arriving after the reply
       went out retransmits the recorded reply.  The client suppresses
       duplicate replies, so side effects happen exactly once. *)
    let csp = Sim.Span.start t.spans Sim.Span.Rpc_call ~label:kind ~arg:dst () in
    Sim.Fiber.consume (send_side_cpu t req_size);
    let eng = Hw.Ethernet.engine t.ether in
    let seq = next_seq t in
    let result = ref None in
    let failed = ref None in
    (* One flight span per wire leg, first send to first delivery; finish
       is idempotent, so retransmits and duplicates leave it alone. *)
    let fsp =
      Sim.Span.start_flow t.spans Sim.Span.Net_flight ~label:kind ~parent:csp
        ~arg:dst ()
    in
    let rsp = ref 0 in
    Sim.Fiber.block (fun wake ->
        let completed = ref false in
        let timer = ref None in
        let attempts = ref 0 in
        let cancel_timer () =
          match !timer with
          | Some id ->
            Sim.Engine.cancel eng id;
            timer := None
          | None -> ()
        in
        (* Declare the peer dead: the call fails with [Node_dead] instead
           of backing off forever.  When the {e caller}'s own node is the
           dead one there is nobody to wake — its thread dies with the
           node — so only the timer is silenced.  [completed] makes this
           and a late real reply mutually exclusive. *)
        let fail_dead ~dead_dst =
          if not !completed then begin
            completed := true;
            cancel_timer ();
            Hashtbl.remove t.outstanding seq;
            Sim.Span.finish t.spans fsp;
            (* A reply already on the wire when the peer died never
               delivers; close its flight span too (0 = never sent,
               finish ignores it). *)
            Sim.Span.finish t.spans !rsp;
            if dead_dst then begin
              t.peer_deaths <- t.peer_deaths + 1;
              failed := Some (Node_dead { node = dst });
              wake ()
            end
          end
        in
        let deliver_reply value () =
          Sim.Engine.note_access eng "rpc:calls";
          Sim.Span.finish t.spans !rsp;
          if !completed then Sim.Stats.Counter.incr t.rel.dup_replies
          else begin
            completed := true;
            cancel_timer ();
            Hashtbl.remove t.outstanding seq;
            result := Some value;
            wake ()
          end
        in
        let deliver_request () =
          Sim.Engine.note_access eng "rpc:calls";
          Sim.Span.finish t.spans fsp;
          match Hashtbl.find_opt t.call_state seq with
          | Some Started -> Sim.Stats.Counter.incr t.rel.dup_requests
          | Some (Answered resend) ->
            Sim.Stats.Counter.incr t.rel.dup_requests;
            Sim.Stats.Counter.incr t.rel.reply_resends;
            resend ()
          | None ->
            Hashtbl.replace t.call_state seq Started;
            enqueue_work (endpoint t dst) (fun () ->
                (* Runs in a server fiber on [dst]. *)
                Sim.Fiber.consume
                  (recv_side_cpu t req_size +. t.c.dispatch_cpu);
                let ssp =
                  Sim.Span.start t.spans Sim.Span.Rpc_server ~label:kind
                    ~parent:csp ()
                in
                let reply_size, value = work () in
                Sim.Fiber.consume (send_side_cpu t reply_size);
                Sim.Span.finish t.spans ssp;
                rsp :=
                  Sim.Span.start_flow t.spans Sim.Span.Net_flight
                    ~label:(kind ^ "-reply") ~parent:csp ~arg:src ();
                let send_reply () =
                  ignore
                    (Hw.Ethernet.send t.ether
                       (Hw.Packet.make ~seq ~src:dst ~dst:src ~size:reply_size
                          ~kind:(kind ^ "-reply") (deliver_reply value))
                      : float)
                in
                Hashtbl.replace t.call_state seq (Answered send_reply);
                send_reply ())
        in
        let rec send_request () =
          ignore
            (Hw.Ethernet.send t.ether
               (Hw.Packet.make ~seq ~src ~dst ~size:req_size ~kind
                  deliver_request)
              : float);
          arm ()
        and arm () =
          let thunk () =
            timer := None;
            if not !completed then begin
              if !attempts >= t.max_retransmits then fail_dead ~dead_dst:true
              else begin
                Sim.Stats.Counter.incr t.rel.timeouts;
                Sim.Stats.Counter.incr t.rel.retransmits;
                incr attempts;
                send_request ()
              end
            end
          in
          let delay = backoff_delay t !attempts in
          timer :=
            Some
              (if Sim.Engine.chooser_active eng then
                 Sim.Engine.schedule eng
                   ~key:(Printf.sprintf "net:n%d" src)
                   ~label:(Printf.sprintf "rto %s %d>%d seq%d" kind src dst seq)
                   ~delay thunk
               else Sim.Engine.schedule eng ~delay thunk)
        in
        Hashtbl.replace t.outstanding seq
          {
            osrc = src;
            odst = dst;
            oabort =
              (function
              | `Dst_dead -> fail_dead ~dead_dst:true
              | `Src_dead -> fail_dead ~dead_dst:false);
          };
        send_request ());
    (* Back on the caller: unmarshal the reply (or surface the peer's
       death as a typed failure). *)
    Sim.Fiber.consume (recv_side_cpu t 0);
    Sim.Span.finish t.spans csp;
    match (!result, !failed) with
    | Some v, _ -> v
    | None, Some e -> raise e
    | None, None -> assert false
  end

(* Fail-stop notification from the crash injector: promptly abort every
   outstanding reliable transaction touching [node].  Senders blocked on
   the corpse fail with [Node_dead] now instead of after the full
   retransmit budget; retransmit timers owned by the corpse go silent (a
   dead node stops transmitting).  Walked in seq order so the abort
   sequence is deterministic. *)
let mark_node_dead t ~node =
  Hashtbl.fold
    (fun seq o acc -> if o.osrc = node || o.odst = node then (seq, o) :: acc else acc)
    t.outstanding []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (_, o) ->
         o.oabort (if o.odst = node then `Dst_dead else `Src_dead));
  (* Fire the peer-death watchers after the aborts: an abort's [on_dead]
     typically unregisters its handshake's watcher, so the watcher only
     fires for waits the abort walk could not reach.  Snapshot-and-clear
     before firing — a watcher body may register new watchers (a retry)
     without them being invoked for this death. *)
  match Hashtbl.find_opt t.watchers node with
  | None -> ()
  | Some ws ->
    Hashtbl.remove t.watchers node;
    List.sort (fun (a, _) (b, _) -> compare a b) ws
    |> List.iter (fun (_, f) -> f (Node_dead { node }))

let server_tids t ~node =
  if node < 0 || node >= Array.length t.server_tcbs then
    invalid_arg "Rpc.server_tids: bad node id";
  List.map Hw.Machine.tcb_id t.server_tcbs.(node) |> List.sort compare

let watch_peer t ~node f =
  t.next_watch <- t.next_watch + 1;
  let id = t.next_watch in
  let prev = Option.value (Hashtbl.find_opt t.watchers node) ~default:[] in
  Hashtbl.replace t.watchers node ((id, f) :: prev);
  id

let unwatch t ~node id =
  match Hashtbl.find_opt t.watchers node with
  | None -> ()
  | Some ws -> (
    match List.filter (fun (i, _) -> i <> id) ws with
    | [] -> Hashtbl.remove t.watchers node
    | ws -> Hashtbl.replace t.watchers node ws)

let set_admission t hook = t.admission <- hook
let posts_rejected t = t.posts_rejected

let post ?parent ?on_dead ?on_reject t ~src ~dst ~kind ~size handler =
  t.posts <- t.posts + 1;
  (* Admission is checked where the request lands (delivery for a remote
     post, enqueue for a local one): the per-node controller sees its own
     queue depth and token buckets at arrival time.  Posts without
     [on_reject] are exempt — losing a kernel datagram to load shedding
     would wedge a protocol, not shed a request. *)
  let admitted () =
    match (t.admission, on_reject) with
    | Some admit, Some _ -> admit ~dst ~kind
    | _ -> true
  in
  let reject () =
    t.posts_rejected <- t.posts_rejected + 1;
    match on_reject with Some f -> f () | None -> ()
  in
  if src = dst then begin
    if admitted () then
      enqueue_work (endpoint t dst) (fun () ->
          Sim.Fiber.consume t.c.dispatch_cpu;
          handler ())
    else reject ()
  end
  else begin
    (* Both the wire leg and the remote handler parent to whatever span
       the poster had open (0 when posted from a timer event), keeping the
       handler's nested spans causally attached to the decision that
       posted it.  A caller that posts from event context — inside a
       [Sim.Fiber.block] register callback, where no fiber is current —
       passes [?parent] explicitly, captured while still on the fiber. *)
    let parent =
      match parent with Some p -> p | None -> Sim.Span.current t.spans
    in
    let fsp =
      Sim.Span.start_flow t.spans Sim.Span.Net_flight ~label:kind ~parent
        ~arg:dst ()
    in
    (* A datagram the transport gives up on (peer died) never delivers:
       close its flight span before surfacing the death. *)
    let on_dead e =
      Sim.Span.finish t.spans fsp;
      match on_dead with Some f -> f e | None -> ()
    in
    send_reliable t ~on_dead ~src ~dst ~size ~kind (fun () ->
        Sim.Span.finish t.spans fsp;
        if admitted () then
          enqueue_work (endpoint t dst) (fun () ->
              Sim.Fiber.consume (recv_side_cpu t size +. t.c.dispatch_cpu);
              let ssp =
                Sim.Span.start t.spans Sim.Span.Rpc_server ~label:kind
                  ~async:true ~parent ()
              in
              match handler () with
              | () -> Sim.Span.finish t.spans ssp
              | exception e ->
                Sim.Span.finish t.spans ssp;
                raise e)
        else reject ())
  end

let calls_made t = t.calls
let posts_made t = t.posts
let peer_deaths t = t.peer_deaths
let backlog t node = Queue.length (endpoint t node).queue
let in_flight t = Hashtbl.length t.outstanding
let delivered_size t = Hashtbl.length t.delivered

let coalescing t =
  {
    coal_eligible = t.coal_eligible;
    coal_batched = t.coal_batched;
    coal_frames = t.coal_frames;
  }
