(** Topaz-style fast RPC between tasks (Birrell–Nelson / Firefly RPC).

    Amber's kernel uses RPC for object moves, thread migration, locate
    requests and address-space-server traffic.  The model charges:

    - sender CPU: [send_cpu_fixed + send_cpu_per_byte * size] (marshalling
      and the kernel send path), on the caller's node;
    - one packet on the shared Ethernet per direction;
    - receiver CPU: [recv_cpu_fixed + recv_cpu_per_byte * size] plus
      [dispatch_cpu], charged to a server thread on the destination node.

    Server threads are real simulated threads: they contend with
    application threads for the destination node's CPUs, so a busy node
    serves RPCs slowly — the effect behind the paper's "operations are
    more expensive on a heavily loaded system" caveat (§5).

    {2 Reliability}

    When created with [~reliable:true] (the runtime does this whenever
    fault injection is enabled on the Ethernet), the fabric layers an
    end-to-end retransmission protocol over the lossy medium:

    - every request and one-way datagram carries a fresh sequence number;
    - the sender retransmits on a timeout with exponential backoff
      ([rto], [2*rto], [4*rto], … capped at [2^6 * rto]);
    - for {!call}, the reply is the implicit acknowledgement; the server
      deduplicates requests by sequence number (suppressing duplicates
      while the work runs, retransmitting the recorded reply afterwards)
      and the client suppresses duplicate replies — so [work] runs
      exactly once per call;
    - {!send_reliable} (and {!post}, which is built on it) uses an
      explicit small ack packet plus receiver-side dedup for the same
      exactly-once guarantee.

    With [reliable = false] (the default) none of this machinery exists:
    no sequence numbers, no timers, no extra packets — behavior is
    byte-identical to the original at-most-once transport.

    The receiver-side dedup table is kept bounded by ack-acknowledged
    retirement: once the sender has seen a datagram's ack it never
    retransmits that seq again, so its dedup entry becomes retirable.
    An entry is actually removed only when it is {e both} older than a
    fixed window of younger acked seqs {e and} the virtual clock has
    passed the latest predicted arrival of any copy the sender ever put
    on the wire (stall clamps, delay spikes, and the duplicate lag
    included) — a count window alone can evict an entry while a
    retransmitted copy is still queued on a saturated medium, letting
    the duplicate deliver twice.

    {2 Coalescing}

    When created with [~coalesce], small one-way datagrams (at most
    [max_msg_bytes]) headed for the same (src, dst) pair are parked for
    up to [flush_window] seconds of virtual time and shipped as one
    framed packet ([frame_header_bytes] plus a small per-message
    header), amortizing per-packet wire overhead and medium-acquisition
    under bursts of small messages (acks, notifies).  Flushing is driven
    by the deterministic event clock, so coalesced runs reproduce per
    seed; with [coalesce] absent (the default) the transport is
    byte-identical to the uncoalesced one.  Request/reply {!call}
    traffic is never coalesced — only one-way datagrams.  Per-pair FIFO
    order is preserved (an oversized message flushes the batch queued
    ahead of it), but a parked datagram may be overtaken by {!call}
    traffic to the same destination issued inside its flush window. *)

type t

(** Raised (or passed to an [on_dead] callback) when a reliable
    transaction gives up on its peer: either the retransmit budget
    ([max_retransmits]) was exhausted against a silent node, or the
    crash injector reported the peer fail-stop dead via
    {!mark_node_dead}. *)
exception Node_dead of { node : int }

type costs = {
  send_cpu_fixed : float;
  send_cpu_per_byte : float;
  recv_cpu_fixed : float;
  recv_cpu_per_byte : float;
  dispatch_cpu : float;
}

val default_costs : costs

(** End-to-end reliability counters (all zero when [reliable = false]).
    [timeouts] counts retransmission-timer expiries, [retransmits] the
    packets re-sent as a result; [dup_requests]/[dup_replies]/
    [dup_datagrams] count suppressed duplicates at the receiving ends;
    [reply_resends] counts recorded replies retransmitted in response to
    a duplicate request; [acks_sent] counts explicit datagram acks. *)
type reliability_counters = {
  timeouts : Sim.Stats.Counter.t;
  retransmits : Sim.Stats.Counter.t;
  dup_requests : Sim.Stats.Counter.t;
  dup_replies : Sim.Stats.Counter.t;
  dup_datagrams : Sim.Stats.Counter.t;
  reply_resends : Sim.Stats.Counter.t;
  acks_sent : Sim.Stats.Counter.t;
}

(** Wire-level batching of small same-destination datagrams (see
    {e Coalescing} above).  All times in virtual seconds, sizes in
    bytes. *)
type coalesce = {
  flush_window : float;  (** how long a parked datagram may wait *)
  max_msg_bytes : int;  (** only messages at most this size are parked *)
  max_frame_bytes : int;
      (** a message that would grow the frame past this flushes the
          batch ahead of itself *)
}

(** 200 µs window, 128-byte messages, 1472-byte frames. *)
val default_coalesce : coalesce

(** [coal_eligible] one-way datagrams were small enough to park;
    [coal_batched] of them actually traveled inside one of the
    [coal_frames] multi-message frames (a batch of one goes out as the
    original packet and counts as uncoalesced). *)
type coalescing_counters = {
  coal_eligible : int;
  coal_batched : int;
  coal_frames : int;
}

val create :
  ether:Hw.Ethernet.t ->
  tasks:Task.t array ->
  ?costs:costs ->
  ?servers_per_node:int ->
  ?reliable:bool ->
  (* default false *)
  ?rto:float ->
  (* initial retransmission timeout, default 25 ms *)
  ?retire_window:int ->
  (* count window of younger acked seqs a dedup entry must fall out of
     before it may retire, default 1024 *)
  ?max_retransmits:int ->
  (* retransmission attempts after which a silent peer is declared dead
     and the transaction fails with Node_dead instead of backing off
     forever; default 30 (unreachable under the stock fault rates — only
     a genuinely dead or partitioned node exhausts it) *)
  ?unsafe_count_window_dedup:bool ->
  (* re-introduce the pre-fix eviction policy that retires dedup entries
     on the count window alone, ignoring the arrival horizon.  Unsound;
     exists only so the model checker can demonstrate it finds the bug.
     Default false *)
  ?coalesce:coalesce ->
  (* park small one-way datagrams and ship them in framed batches;
     absent by default (wire behavior byte-identical without it) *)
  ?spans:Sim.Span.t ->
  (* span collector for causal tracing of calls, server work and wire
     flights; defaults to a disabled collector (zero cost) *)
  unit ->
  t

val costs : t -> costs
val reliable_mode : t -> bool
val reliability : t -> reliability_counters

(** [call t ~dst ~kind ~req_size ~work] performs a synchronous RPC from the
    calling fiber's node to node [dst].  [work] executes in a server fiber
    on [dst] and returns [(reply_size, result)].  The caller blocks until
    the reply arrives.  A call whose destination is the caller's own node
    short-circuits the wire but still pays dispatch CPU.

    In reliable mode the call survives lost requests and lost replies,
    and [work] still executes exactly once (see {e Reliability} above).
    A reliable call that exhausts its retransmit budget — or whose
    destination is reported dead via {!mark_node_dead} — raises
    {!Node_dead} at the caller in bounded virtual time.

    Must be called from inside a fiber. *)
val call :
  t -> dst:int -> kind:string -> req_size:int -> work:(unit -> int * 'a) -> 'a

(** [send_reliable t ~src ~dst ~size ~kind deliver] sends a one-way
    datagram whose [deliver] callback runs in event context at [dst]
    (exactly like a bare [Hw.Ethernet.send] callback — not in a server
    fiber).  In reliable mode the datagram is acknowledged, retransmitted
    until acked, and deduplicated at the receiver, so [deliver] runs
    exactly once even under packet loss; otherwise it is a plain
    Ethernet send.  [on_dead] (reliable mode only) is called — at most
    once, in event context — with {!Node_dead} if the datagram gives up
    before being acknowledged: the retransmit budget ran out, or
    {!mark_node_dead} reported either endpoint crashed (the exception
    carries the dead node's identity).  Without it the message just dies
    silently.  Usable from outside a fiber. *)
val send_reliable :
  t ->
  ?on_dead:(exn -> unit) ->
  src:int -> dst:int -> size:int -> kind:string -> (unit -> unit) -> unit

(** Tell the transport [node] has crashed fail-stop: every outstanding
    reliable transaction whose destination is [node] aborts now with
    {!Node_dead} (delivered to the caller / [on_dead]), and every
    retransmit timer owned by [node] goes silent — a blocked caller on
    the corpse is left for the crash injector's thread kill, but a
    datagram's [on_dead], which may observe from the live side, still
    fires.  Transactions between live nodes are untouched.  Idempotent;
    a no-op in unreliable mode. *)
val mark_node_dead : t -> node:int -> unit

(** [watch_peer t ~node f] registers [f] to be invoked (with
    [Node_dead]) when {!mark_node_dead} later reports [node] crashed.
    Watchers cover the handshake window the outstanding-transaction
    aborts cannot: a reliable datagram is transport-acked at delivery,
    retiring its transaction, while the application handler still sits
    on the destination's server queue — if the node dies there, the
    reply datagram the sender is blocked on was never posted and no
    outstanding transaction names the corpse.  Watchers fire after the
    aborts, in registration order; each firing clears the node's
    registrations.  Returns an id for {!unwatch}.  Callbacks must be
    idempotent with the handshake's own [on_dead] (wake-once). *)
val watch_peer : t -> node:int -> (exn -> unit) -> int

(** Remove a watcher registered by {!watch_peer}.  Idempotent. *)
val unwatch : t -> node:int -> int -> unit

(** Thread ids of [node]'s server-pool fibers, sorted.  A fail-stopped
    node freezes them mid-handler; the crash injector uses the ids to
    retire whatever spans they hold open, since a frozen fiber never
    unwinds its own. *)
val server_tids : t -> node:int -> int list

(** One-way message: [handler] runs in a server fiber on [dst].  Usable
    from outside a fiber (e.g. an [on_resume] hook), so no send-side CPU is
    charged here — callers in fiber context account for it themselves.
    Built on {!send_reliable}, so exactly-once under faults.  The wire
    leg's flight span and the handler's span parent to the poster's
    current span; pass [?parent] when posting from event context (no
    fiber current), with the span captured back when one was. *)
val post :
  ?parent:int ->
  ?on_dead:(exn -> unit) ->
  ?on_reject:(unit -> unit) ->
  t -> src:int -> dst:int -> kind:string -> size:int -> (unit -> unit) -> unit

(** {1 Server-pool admission control}

    An installed hook is consulted when a {!post} that supplied
    [?on_reject] lands at its destination (at delivery for a remote post,
    at enqueue for a local one): hook says no → the handler is dropped and
    [on_reject] runs instead, in event context at the destination, so it
    must not block or consume CPU (posting a rejection notice back is the
    intended shape).  Posts without [on_reject] — all kernel protocol
    traffic — are never subject to admission.  The hook itself must not
    consume virtual time or draw RNG; serving layers install token-bucket
    plus queue-depth policies here ({!module:Serve} in [lib/serve]). *)

(** Install (or with [None] remove) the admission hook. *)
val set_admission : t -> (dst:int -> kind:string -> bool) option -> unit

(** One-way posts shed by the admission hook. *)
val posts_rejected : t -> int

(** {1 Statistics} *)

val calls_made : t -> int
val posts_made : t -> int

(** Reliable transactions that gave up on their peer ({!Node_dead}). *)
val peer_deaths : t -> int

(** Currently queued work items on a node (servers all busy). *)
val backlog : t -> int -> int

(** Open reliable transactions (requests sent, completion not yet
    retired) across the whole fabric; always [0] in unreliable mode.
    A cheap instantaneous gauge for telemetry. *)
val in_flight : t -> int

(** Current size of the receiver-side dedup table — bounded by the
    retirement window plus datagrams whose acks are still outstanding.
    Exposed for the boundedness regression test. *)
val delivered_size : t -> int

val coalescing : t -> coalescing_counters
