type t = {
  rt : Amber.Runtime.t;
  main_tid : int;
  mutable sealed : float option;
}

let all_kinds =
  [
    Sim.Span.Invoke_local;
    Sim.Span.Invoke_remote;
    Sim.Span.Replica_read;
    Sim.Span.Async_invoke;
    Sim.Span.Chase_hop;
    Sim.Span.Thread_flight;
    Sim.Span.Net_flight;
    Sim.Span.Rpc_call;
    Sim.Span.Rpc_server;
    Sim.Span.Object_move;
    Sim.Span.Replica_install;
    Sim.Span.Invalidate;
    Sim.Span.Lock_wait;
    Sim.Span.Cond_wait;
    Sim.Span.Barrier_wait;
    Sim.Span.Join_wait;
    Sim.Span.Future_wait;
    Sim.Span.Steal;
    Sim.Span.Rebalance;
    Sim.Span.Serve_request;
  ]

let total t =
  match t.sealed with Some v -> v | None -> Amber.Runtime.now t.rt

let main_tid t = t.main_tid
let spans t = Sim.Span.spans (Amber.Runtime.spans t.rt)
let seal t = t.sealed <- Some (Amber.Runtime.now t.rt)

let critical_path t =
  Critical_path.analyze ~spans:(spans t) ~main_tid:t.main_tid ~total:(total t)

(* A span kind whose self time is spent off-CPU (waiting for a wire leg,
   a reply or a wakeup) rather than executing. *)
let blocked_kind = function
  | Sim.Span.Lock_wait | Sim.Span.Cond_wait | Sim.Span.Barrier_wait
  | Sim.Span.Join_wait | Sim.Span.Future_wait | Sim.Span.Thread_flight
  | Sim.Span.Net_flight | Sim.Span.Rpc_call | Sim.Span.Object_move ->
      true
  | Sim.Span.Invoke_local | Sim.Span.Invoke_remote | Sim.Span.Replica_read
  | Sim.Span.Async_invoke | Sim.Span.Chase_hop | Sim.Span.Rpc_server
  | Sim.Span.Replica_install | Sim.Span.Invalidate | Sim.Span.Steal
  | Sim.Span.Rebalance | Sim.Span.Serve_request ->
      false

let report_lines t =
  let spans = spans t in
  let tot = total t in
  (* Per-kind duration histograms (finished spans only): log-bucketed,
     so memory stays fixed on long runs and p50/p95/p99 carry a bounded
     relative error (half a 5% bucket) with no sampling noise — the same
     estimator the watch layer's windowed series use. *)
  let by_kind = Hashtbl.create 32 in
  (* Tagged spans additionally feed a per-(kind, tag) histogram, so one
     span attach yields per-attribute percentile breakdowns (e.g. the
     serving layer's per-request-class SLOs).  Untagged runs put nothing
     here and their report stays byte-identical. *)
  let by_tag = Hashtbl.create 8 in
  let opened = ref 0 in
  let hist_of tbl key =
    match Hashtbl.find_opt tbl key with
    | Some h -> h
    | None ->
        let h = Sim.Stats.Log_histogram.create () in
        Hashtbl.replace tbl key h;
        h
  in
  List.iter
    (fun (s : Sim.Span.span) ->
      if s.t1 < 0.0 then incr opened
      else begin
        let dt = s.t1 -. s.t0 in
        Sim.Stats.Log_histogram.add (hist_of by_kind s.kind) dt;
        if s.tag <> "" then
          Sim.Stats.Log_histogram.add (hist_of by_tag (s.kind, s.tag)) dt
      end)
    spans;
  let line name h =
    let p q = Sim.Stats.Log_histogram.percentile h q *. 1e6 in
    Printf.sprintf
      "%-18s n=%-6d total=%8.3fms p50=%8.1fus p95=%8.1fus p99=%8.1fus" name
      (Sim.Stats.Log_histogram.count h)
      (Sim.Stats.Log_histogram.total h *. 1e3)
      (p 50.0) (p 95.0) (p 99.0)
  in
  let kind_lines =
    List.concat_map
      (fun k ->
        match Hashtbl.find_opt by_kind k with
        | None -> []
        | Some s ->
            let tags =
              Hashtbl.fold
                (fun (k', tag) s' acc -> if k' = k then (tag, s') :: acc else acc)
                by_tag []
              |> List.sort (fun (a, _) (b, _) -> compare a b)
            in
            line (Sim.Span.kind_name k) s
            :: List.map
                 (fun (tag, s') ->
                   line (Printf.sprintf "%s[%s]" (Sim.Span.kind_name k) tag) s')
                 tags)
      all_kinds
  in
  (* Per-node attribution of span self time to on-CPU vs blocked kinds. *)
  let nodes = Amber.Runtime.nodes t.rt in
  let busy = Array.make nodes 0.0 and blocked = Array.make nodes 0.0 in
  List.iter
    (fun ((s : Sim.Span.span), excl) ->
      if s.node >= 0 && s.node < nodes then
        if blocked_kind s.kind then blocked.(s.node) <- blocked.(s.node) +. excl
        else busy.(s.node) <- busy.(s.node) +. excl)
    (Critical_path.exclusive_times ~spans ~total:tot);
  let node_lines =
    List.init nodes (fun i ->
        Printf.sprintf "node %d: spans busy %.3fms, blocked %.3fms" i
          (busy.(i) *. 1e3)
          (blocked.(i) *. 1e3))
  in
  let header =
    Printf.sprintf "%d spans over %.6fs%s" (List.length spans) tot
      (if !opened > 0 then Printf.sprintf " (%d still open)" !opened else "")
  in
  (header :: kind_lines) @ node_lines

let attach rt =
  let spans = Amber.Runtime.spans rt in
  Sim.Span.set_enabled spans true;
  let main_tid =
    match Hw.Machine.self () with
    | Some tcb -> Hw.Machine.tcb_id tcb
    | None -> -1
  in
  let t = { rt; main_tid; sealed = None } in
  Amber.Runtime.add_report_section rt ~name:"profile" (fun () ->
      report_lines t);
  t
