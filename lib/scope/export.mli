(** Exporters for span traces and structured trace records.

    [chrome_json] emits Chrome trace-event format (the JSON object form
    with a ["traceEvents"] array), loadable in Perfetto / chrome://tracing:
    one complete ("X") event per span with [pid] = node and [tid] = TCB id,
    microsecond timestamps, and a flow arrow ("s"/"f" pair) for every
    cross-node flight so remote operations draw as arcs between node
    tracks.  [args] carries the span id, parent id, object address and the
    kind-specific argument, which is what the CI nesting validator checks.

    [spans_jsonl] / [trace_record_json] are the line-oriented dumps for ad
    hoc tooling: one self-contained JSON object per line. *)

val chrome_json :
  ?counters:Sim.Series.series list -> ?clip:float -> Sim.Span.span list -> string
(** [clip] closes still-open spans at that time (defaults to the latest
    timestamp seen in the list).  [counters] adds watch time series as
    counter ("C") events — one Perfetto counter track per (node, series)
    — so load curves render under the span lanes. *)

val spans_jsonl : ?clip:float -> Sim.Span.span list -> string list

val span_json : clip:float -> Sim.Span.span -> string
(** One span as a single JSON object (the [spans_jsonl] line format). *)

val jstr : string -> string
(** JSON string literal with escaping, for callers assembling documents
    around the primitives above. *)

val series_json : Sim.Series.series -> string
(** One self-contained JSON object: name, node, kind, drop count and the
    full [[t, v]] point list. *)

val series_jsonl : Sim.Series.series list -> string list

val series_csv : Sim.Series.series list -> string
(** Long-format CSV ([series,node,kind,time_s,value]), one row per
    point. *)

val trace_record_json : Sim.Trace.record -> string
