type component = Compute | Network | Queueing | Coherence

let component_of_kind = function
  | Sim.Span.Thread_flight | Sim.Span.Net_flight | Sim.Span.Rpc_call ->
      Network
  | Sim.Span.Lock_wait | Sim.Span.Cond_wait | Sim.Span.Barrier_wait
  | Sim.Span.Join_wait | Sim.Span.Future_wait ->
      Queueing
  | Sim.Span.Chase_hop | Sim.Span.Object_move | Sim.Span.Replica_install
  | Sim.Span.Invalidate ->
      Coherence
  | Sim.Span.Invoke_local | Sim.Span.Invoke_remote | Sim.Span.Replica_read
  | Sim.Span.Rpc_server | Sim.Span.Async_invoke | Sim.Span.Steal
  | Sim.Span.Rebalance | Sim.Span.Serve_request ->
      Compute

type report = {
  total : float;
  compute : float;
  network : float;
  queueing : float;
  coherence : float;
  contributors : (string * float) list;
}

let network_frac r = if r.total > 0.0 then r.network /. r.total else 0.0

(* Shared indexing: children per parent id and top-level spans per tid,
   both in start order. *)
let index spans =
  let children = Hashtbl.create 256 in
  let tops = Hashtbl.create 64 in
  List.iter
    (fun (s : Sim.Span.span) ->
      let tbl, key =
        if s.parent = 0 then (tops, s.tid) else (children, s.parent)
      in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (s :: prev))
    spans;
  let rev tbl =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
    List.iter (fun k -> Hashtbl.replace tbl k (List.rev (Hashtbl.find tbl k))) keys
  in
  rev children;
  rev tops;
  let children_of id = try Hashtbl.find children id with Not_found -> [] in
  let tops_of tid = try Hashtbl.find tops tid with Not_found -> [] in
  (children_of, tops_of)

let span_key (s : Sim.Span.span) =
  if s.label = "" then Sim.Span.kind_name s.kind
  else Sim.Span.kind_name s.kind ^ ":" ^ s.label

let max_descent = 64

let analyze ~spans ~main_tid ~total =
  let children_of, tops_of = index spans in
  let by_id = Hashtbl.create 256 in
  List.iter
    (fun (s : Sim.Span.span) -> Hashtbl.replace by_id s.id s)
    spans;
  let clip_end (s : Sim.Span.span) =
    if s.t1 < 0.0 then total else Float.min s.t1 total
  in
  let compute = ref 0.0
  and network = ref 0.0
  and queueing = ref 0.0
  and coherence = ref 0.0 in
  let contrib : (string, float ref) Hashtbl.t = Hashtbl.create 64 in
  let book key comp d =
    (match comp with
    | Compute -> compute := !compute +. d
    | Network -> network := !network +. d
    | Queueing -> queueing := !queueing +. d
    | Coherence -> coherence := !coherence +. d);
    match Hashtbl.find_opt contrib key with
    | Some r -> r := !r +. d
    | None -> Hashtbl.replace contrib key (ref d)
  in
  (* Sweep a window [a, b) over an ordered span list: account each span
     over its clipped sub-window (overlaps collapse onto the earlier
     sibling) and hand the uncovered gaps to [gap]. *)
  let rec sweep ~depth ~visiting ~fvisiting ~gap items a b =
    let cursor = ref a in
    List.iter
      (fun (s : Sim.Span.span) ->
        let s1 = Float.min (clip_end s) b in
        if s1 > !cursor && s.t0 < b then begin
          let s0 = Float.max s.t0 !cursor in
          if s0 > !cursor then gap !cursor s0;
          account ~depth ~visiting ~fvisiting s s0 s1;
          cursor := s1
        end)
      items;
    if b > !cursor then gap !cursor b
  and account ~depth ~visiting ~fvisiting (s : Sim.Span.span) a b =
    (* Book [a, b) to span [s]: children recurse, self time goes to the
       span's component — except a Join_wait, whose self time descends
       into the joined thread's concurrent timeline, and a Future_wait,
       whose self time descends into the awaited async invocation's span
       (only the un-overlapped remainder of the async work reaches the
       awaiting path). *)
    let self x y =
      if x < y then
        match s.kind with
        | Sim.Span.Join_wait
          when s.arg >= 0 && depth < max_descent
               && not (List.mem s.arg visiting) ->
            timeline ~depth:(depth + 1) ~visiting:(s.arg :: visiting)
              ~fvisiting s.arg x y
        | Sim.Span.Future_wait
          when s.arg > 0 && depth < max_descent
               && not (List.mem s.arg fvisiting) -> (
            match Hashtbl.find_opt by_id s.arg with
            | Some tgt when clip_end tgt > x && tgt.t0 < y ->
                (* Wait time outside the async span's interval (e.g. the
                   resolution notify still in flight) stays queueing. *)
                let x0 = Float.max x tgt.t0
                and y0 = Float.min y (clip_end tgt) in
                if x0 > x then book (span_key s) Queueing (x0 -. x);
                account ~depth:(depth + 1) ~visiting
                  ~fvisiting:(s.arg :: fvisiting) tgt x0 y0;
                if y > y0 then book (span_key s) Queueing (y -. y0)
            | _ -> book (span_key s) Queueing (y -. x))
        | k -> book (span_key s) (component_of_kind k) (y -. x)
    in
    (* Detached async-invocation subtrees overlap the issuer's continued
       execution: they reach the path only through the Future_wait that
       awaits them, never inline. *)
    let inline_children =
      List.filter
        (fun (c : Sim.Span.span) -> c.kind <> Sim.Span.Async_invoke)
        (children_of s.id)
    in
    sweep ~depth ~visiting ~fvisiting ~gap:self inline_children a b
  and timeline ~depth ~visiting ~fvisiting tid a b =
    (* Uncovered time on a thread's own timeline is compute: the thread
       was running (or runnable) outside any instrumented operation. *)
    let gap x y = book "compute" Compute (y -. x) in
    sweep ~depth ~visiting ~fvisiting ~gap (tops_of tid) a b
  in
  timeline ~depth:0 ~visiting:[ main_tid ] ~fvisiting:[] main_tid 0.0 total;
  let contributors =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) contrib []
    |> List.sort (fun (ka, a) (kb, b) ->
           match compare b a with 0 -> compare ka kb | c -> c)
  in
  {
    total;
    compute = !compute;
    network = !network;
    queueing = !queueing;
    coherence = !coherence;
    contributors;
  }

let exclusive_times ~spans ~total =
  let children_of, _ = index spans in
  let clip_end (s : Sim.Span.span) =
    if s.t1 < 0.0 then total else Float.min s.t1 total
  in
  List.map
    (fun (s : Sim.Span.span) ->
      let a = s.t0 and b = clip_end s in
      let covered = ref 0.0 in
      let cursor = ref a in
      List.iter
        (fun (k : Sim.Span.span) ->
          let k1 = Float.min (clip_end k) b in
          if k1 > !cursor && k.t0 < b then begin
            let k0 = Float.max k.t0 !cursor in
            covered := !covered +. (k1 -. k0);
            cursor := k1
          end)
        (children_of s.id);
      (s, Float.max 0.0 (b -. a -. !covered)))
    spans

let pp ppf r =
  let pct v = if r.total > 0.0 then 100.0 *. v /. r.total else 0.0 in
  Format.fprintf ppf "critical path over %.6fs of the main timeline:@." r.total;
  let line name v =
    Format.fprintf ppf "  %-10s %10.6fs  %5.1f%%@." name v (pct v)
  in
  line "compute" r.compute;
  line "network" r.network;
  line "queueing" r.queueing;
  line "coherence" r.coherence;
  let top = List.filteri (fun i _ -> i < 8) r.contributors in
  if top <> [] then begin
    Format.fprintf ppf "  top contributors:@.";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "    %-28s %10.6fs@." k v)
      top
  end
