(** Critical-path analysis over the span forest.

    The analysis walks the {e main thread's} timeline from 0 to the end of
    the run and attributes every instant to exactly one component.  A
    span's self time (its duration minus its children's) is booked to the
    component of its kind; windows covered by no span are compute (the
    thread was running user code or was runnable).  A [Join_wait] span's
    self time descends into the {e joined} thread's timeline over the same
    window — the joined thread's work is what the waiter was actually
    waiting for — so the result approximates the longest dependency chain
    of the run.  By construction the four components sum exactly to the
    total analyzed time. *)

type component = Compute | Network | Queueing | Coherence

val component_of_kind : Sim.Span.kind -> component

type report = {
  total : float;
  compute : float;
  network : float;
  queueing : float;
  coherence : float;
  contributors : (string * float) list;
      (** top self-time contributors along the walked path, largest
          first, as [(kind:label, seconds)] *)
}

val network_frac : report -> float
(** network / total (0 when total is 0). *)

val analyze :
  spans:Sim.Span.span list -> main_tid:int -> total:float -> report
(** [spans] in start order (as returned by {!Sim.Span.spans}); [total] is
    the virtual time to decompose (typically the main body's elapsed
    time); open spans are clipped to it. *)

val exclusive_times :
  spans:Sim.Span.span list -> total:float -> (Sim.Span.span * float) list
(** Self time of every span (duration minus the union of its children's
    intervals), for flat attribution uses like the per-node profile. *)

val pp : Format.formatter -> report -> unit
