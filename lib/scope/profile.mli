(** The virtual-time profiler: a thin session object tying the runtime's
    span collector to the report, the exporters and the critical-path
    analyzer.

    [attach] must be called from the main Amber thread (it records that
    thread as the root of the critical-path walk); it enables span
    collection and registers a ["profile"] section in [Stats_report] with
    per-kind counts, totals and p50/p95/p99 latencies plus a per-node
    busy/blocked attribution.  Nothing here consumes virtual time or
    draws RNG: a profiled run's base report is byte-identical to an
    unprofiled one. *)

type t

val attach : Amber.Runtime.t -> t

val seal : t -> unit
(** Record the end of the measured region (call at the end of the main
    body, before teardown quiesces).  Without it, analysis runs to the
    current clock. *)

val total : t -> float
val main_tid : t -> int
val spans : t -> Sim.Span.span list
val critical_path : t -> Critical_path.report

val report_lines : t -> string list
(** The lines of the ["profile"] report section (also available without
    capturing a full report). *)
