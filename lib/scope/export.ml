let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"';
  Buffer.contents b

let span_name (s : Sim.Span.span) =
  if s.label = "" then Sim.Span.kind_name s.kind
  else Sim.Span.kind_name s.kind ^ ":" ^ s.label

let span_cat (s : Sim.Span.span) =
  match String.index_opt (Sim.Span.kind_name s.kind) '.' with
  | Some i -> String.sub (Sim.Span.kind_name s.kind) 0 i
  | None -> Sim.Span.kind_name s.kind

let default_clip spans =
  List.fold_left
    (fun acc (s : Sim.Span.span) -> Float.max acc (Float.max s.t0 s.t1))
    0.0 spans

let clip_end ~clip (s : Sim.Span.span) =
  if s.t1 < 0.0 then clip else Float.min s.t1 clip

let is_flight (s : Sim.Span.span) =
  match s.kind with
  | Sim.Span.Thread_flight | Sim.Span.Net_flight -> true
  | _ -> false

let us t = t *. 1e6

let chrome_json ?(counters = []) ?clip spans =
  let clip = match clip with Some c -> c | None -> default_clip spans in
  let b = Buffer.create 4096 in
  let first = ref true in
  let event fields =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (jstr k);
        Buffer.add_char b ':';
        Buffer.add_string b v)
      fields;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"traceEvents\":[\n";
  (* Track metadata: one process per node, one named track per thread. *)
  let pids = Hashtbl.create 16 and tracks = Hashtbl.create 64 in
  let ensure_pid pid =
    if not (Hashtbl.mem pids pid) then begin
      Hashtbl.replace pids pid ();
      event
        [
          ("ph", jstr "M");
          ("pid", string_of_int pid);
          ("name", jstr "process_name");
          ("args", Printf.sprintf "{\"name\":%s}"
             (jstr (Printf.sprintf "node%d" pid)));
        ]
    end
  in
  List.iter
    (fun (s : Sim.Span.span) ->
      let pid = max 0 s.node and tid = max 0 s.tid in
      ensure_pid pid;
      if not (Hashtbl.mem tracks (pid, tid)) then begin
        Hashtbl.replace tracks (pid, tid) ();
        event
          [
            ("ph", jstr "M");
            ("pid", string_of_int pid);
            ("tid", string_of_int tid);
            ("name", jstr "thread_name");
            ("args", Printf.sprintf "{\"name\":%s}"
               (jstr (Printf.sprintf "tcb%d" tid)));
          ]
      end)
    spans;
  List.iter
    (fun (s : Sim.Span.span) ->
      let pid = max 0 s.node and tid = max 0 s.tid in
      let t1 = clip_end ~clip s in
      let args =
        Printf.sprintf
          "{\"span\":%d,\"parent\":%d,\"obj\":%d,\"arg\":%d%s%s}" s.id s.parent
          s.obj s.arg
          (if s.async then ",\"async\":true" else "")
          (if s.t1 < 0.0 then ",\"open\":true" else "")
      in
      event
        [
          ("ph", jstr "X");
          ("pid", string_of_int pid);
          ("tid", string_of_int tid);
          ("ts", Printf.sprintf "%.3f" (us s.t0));
          ("dur", Printf.sprintf "%.3f" (us (t1 -. s.t0)));
          ("name", jstr (span_name s));
          ("cat", jstr (span_cat s));
          ("args", args);
        ];
      (* Cross-node flights additionally draw a flow arrow from the source
         node's track to the destination's. *)
      if is_flight s && s.arg >= 0 && s.arg <> s.node then begin
        event
          [
            ("ph", jstr "s");
            ("id", string_of_int s.id);
            ("pid", string_of_int pid);
            ("tid", string_of_int tid);
            ("ts", Printf.sprintf "%.3f" (us s.t0));
            ("name", jstr (span_name s));
            ("cat", jstr (span_cat s));
          ];
        event
          [
            ("ph", jstr "f");
            ("bp", jstr "e");
            ("id", string_of_int s.id);
            ("pid", string_of_int s.arg);
            ("tid", string_of_int tid);
            ("ts", Printf.sprintf "%.3f" (us t1));
            ("name", jstr (span_name s));
            ("cat", jstr (span_cat s));
          ]
      end)
    spans;
  (* Watch time series render as counter ("C") tracks under the span
     lanes: one track per (node, series name), one sample per point.
     Cluster-wide series (node -1) land on node0's process. *)
  List.iter
    (fun s ->
      let pid = max 0 (Sim.Series.node s) in
      ensure_pid pid;
      let name = jstr (Sim.Series.name s) in
      Sim.Series.iter_points s (fun (p : Sim.Series.point) ->
          event
            [
              ("ph", jstr "C");
              ("pid", string_of_int pid);
              ("ts", Printf.sprintf "%.3f" (us p.at));
              ("name", name);
              ("args", Printf.sprintf "{\"v\":%.9g}" p.v);
            ]))
    counters;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let span_jsonl ~clip (s : Sim.Span.span) =
  Printf.sprintf
    "{\"id\":%d,\"parent\":%d,\"async\":%b,\"kind\":%s,\"label\":%s,\"node\":%d,\"tid\":%d,\"obj\":%d,\"arg\":%d,\"t0\":%.9f,\"t1\":%.9f,\"open\":%b}"
    s.id s.parent s.async
    (jstr (Sim.Span.kind_name s.kind))
    (jstr s.label) s.node s.tid s.obj s.arg s.t0 (clip_end ~clip s)
    (s.t1 < 0.0)

let spans_jsonl ?clip spans =
  let clip = match clip with Some c -> c | None -> default_clip spans in
  List.map (span_jsonl ~clip) spans

let span_json = span_jsonl

let series_json s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"series\":%s,\"node\":%d,\"kind\":%s,\"dropped\":%d,\"points\":["
       (jstr (Sim.Series.name s))
       (Sim.Series.node s)
       (jstr (Sim.Series.kind_label (Sim.Series.kind s)))
       (Sim.Series.dropped s));
  let first = ref true in
  Sim.Series.iter_points s (fun (p : Sim.Series.point) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%.9f,%.9g]" p.at p.v));
  Buffer.add_string b "]}";
  Buffer.contents b

let series_jsonl series = List.map series_json series

let series_csv series =
  let b = Buffer.create 4096 in
  Buffer.add_string b "series,node,kind,time_s,value\n";
  List.iter
    (fun s ->
      let prefix =
        Printf.sprintf "%s,%d,%s,"
          (Sim.Series.name s)
          (Sim.Series.node s)
          (Sim.Series.kind_label (Sim.Series.kind s))
      in
      Sim.Series.iter_points s (fun (p : Sim.Series.point) ->
          Buffer.add_string b prefix;
          Buffer.add_string b (Printf.sprintf "%.9f,%.9g\n" p.at p.v)))
    series;
  Buffer.contents b

let trace_record_json (r : Sim.Trace.record) =
  Printf.sprintf
    "{\"time\":%.9f,\"category\":%s,\"detail\":%s,\"node\":%d,\"cpu\":%d,\"tid\":%d,\"obj\":%d,\"span\":%d,\"parent\":%d}"
    r.time (jstr r.category) (jstr r.detail) r.node r.cpu r.tid r.obj r.span
    r.parent
