(* Span-balance lint: structural checks over a finished run's span set.

   The span tree is the causal record every Scope tool builds on — the
   profiler's blocked-time attribution, the critical-path walk and the
   Chrome export all assume it is well formed.  This lint makes the
   assumptions explicit and checks them:

   - balance: every span opened was closed (an open span at quiescence
     means a [finish] is missing on some code path — a leak the
     wall-clock attribution would silently mischarge);
   - async parentage: an [async] span is causally linked to its parent
     rather than nested, so a parent it names must exist and must have
     opened first — a dangling or not-yet-opened parent breaks the
     causal chain the critical-path analysis follows.  (The parent may
     well have {e closed} first: a message handler's span legitimately
     outlives the send that caused it — that is what [async] means.
     And a parent of 0 is legal: an operation launched from a thread
     body with no enclosing span is genuinely top-level.);
   - flow pairing: the Chrome export draws one [s]→[f] arrow per
     cross-node flight, keyed by span id, so flight span ids must be
     unique (a duplicated id would cross-wire two arrows in Perfetto).

   Pure function over the span list: usable online (after a run) and
   offline (loaded from a span dump). *)

let ok_eps = 1e-12

let lint (spans : Sim.Span.span list) : string list =
  let by_id : (int, Sim.Span.span) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun (s : Sim.Span.span) -> Hashtbl.replace by_id s.id s) spans;
  let findings = ref [] in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  let describe (s : Sim.Span.span) =
    Printf.sprintf "span %d (%s %S, node %d tid %d)" s.id
      (Sim.Span.kind_name s.kind) s.label s.node s.tid
  in
  let flight_ids : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Sim.Span.span) ->
      (* balance: a close for every open *)
      if s.t1 < 0.0 then
        add "%s opened at %.6fs and never closed" (describe s) s.t0;
      (* async parentage *)
      if s.async && s.parent <> 0 then begin
        match Hashtbl.find_opt by_id s.parent with
        | None -> add "%s names missing parent %d" (describe s) s.parent
        | Some p ->
          if p.Sim.Span.t0 > s.t0 +. ok_eps then
            add "%s opened at %.6fs before its parent %d opened (%.6fs)"
              (describe s) s.t0 p.Sim.Span.id p.Sim.Span.t0
      end;
      (* flow pairing: ids that become s/f arrows must be unique *)
      match s.kind with
      | Sim.Span.Thread_flight | Sim.Span.Net_flight ->
        if s.arg >= 0 && s.arg <> s.node then begin
          if Hashtbl.mem flight_ids s.id then
            add "%s reuses flow-arrow id %d" (describe s) s.id;
          Hashtbl.replace flight_ids s.id ()
        end
      | _ -> ())
    spans;
  List.rev !findings
