(** AmberSan: happens-before race detector and coherence sanitizer for
    the Amber object space.

    The sanitizer observes the runtime through the {!San_hooks}
    instrumentation points and maintains vector clocks per thread and per
    object.  Happens-before edges come from thread [Start]/[Join], lock
    and spinlock release→acquire, barrier generations, condition-variable
    signal→wakeup, and (trivially, via program order) thread migration.
    It reports:

    - {b data races}: two accesses to the same object, from different
      threads, not ordered by the happens-before relation, at least one
      of which writes.  Invocations declare their access with
      {!San_hooks.mode}: the default [Atomic] means a self-contained
      action serialized at the object (never racy against other atomic
      actions); [Read]/[Write] declare steps of multi-invocation
      protocols, which must be ordered by explicit synchronization;
    - {b deadlock potential}: cycles in the lock-order graph (an edge
      [a → b] each time a thread acquires [b] while holding [a]);
    - {b coherence drift}: {!Audit} invariant violations, checked
      continuously at move quiescence and exhaustively at {!finalize}.

    Attaching with [analyze:false] only records the event stream into the
    runtime's {!Sim.Trace} (category ["san"]) for offline {!lint_trace}.
    Hooks never charge virtual time, so a sanitized run is bit-identical
    to a bare one. *)

open Amber

(** {1 Events}

    The observed event stream, with a stable one-line text codec used for
    trace records so a recorded run can be linted offline. *)

module Event : sig
  type barrier_phase = Arrive | Release | Resume

  type t =
    | Thread_start of { parent : int; child : int }
        (** [parent = -1] when the spawner is not an Amber thread *)
    | Thread_join of { parent : int; child : int }
    | Migrate of { tid : int; src : int; dst : int }
    | Object_created of { addr : int; name : string }
    | Object_destroyed of { addr : int }
    | Sync_created of { addr : int; kind : string }
    | Access of { tid : int; addr : int; mode : San_hooks.mode }
    | Access_end of { tid : int; addr : int }
    | Lock_acquired of { tid : int; addr : int }
    | Lock_released of { tid : int; addr : int }
    | Barrier of { tid : int; addr : int; gen : int; phase : barrier_phase }
    | Cond_signal of { tid : int; token : int }
    | Cond_wake of { tid : int; token : int }
    | Replica_read of { tid : int; addr : int; node : int; epoch : int }
        (** a Read invocation served from the replica snapshot on [node];
            checked online against the object's replica set and epoch *)
    | Steal of { by : int; tid : int; victim : int; thief : int }
        (** the balancer's stealer (agent thread [by], [-1] outside a
            fiber) dequeued runnable thread [tid] from node [victim]'s
            ready queue and shipped it to node [thief].  Happens-before
            edge: the dequeue at the victim precedes the stolen thread's
            next run, so [by]'s clock joins into [tid]'s. *)
    | Future_resolve of { tid : int; id : int }
        (** the helper thread [tid] carrying async invocation [id]
            resolved its future; like a condition signal, the resolver's
            clock is published under the future id *)
    | Future_await of { tid : int; id : int }
        (** thread [tid] observed future [id] resolved in [Future.await]
            and joins the stored resolve clock — the happens-before edge
            resolve → await *)

  val to_string : t -> string

  (** Inverse of {!to_string}; [None] on anything unrecognized. *)
  val of_string : string -> t option
end

(** {1 Findings} *)

type race = {
  addr : int;
  name : string;
  tid : int;
  mode : San_hooks.mode;
  prior_tid : int;
  prior_mode : San_hooks.mode;
}

type cycle = { addrs : int list; names : string list }

type report = {
  races : race list;
  cycles : cycle list;
  violations : Audit.violation list;
  events : int;
  threads : int;
  objects_tracked : int;
}

val findings : report -> int

(** No races, no lock-order cycles, no coherence violations. *)
val clean : report -> bool

val failed : report -> bool
val pp_race : Format.formatter -> race -> unit
val pp_cycle : Format.formatter -> cycle -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Online sanitizer} *)

type t

(** Install the sanitizer on a runtime (via {!Runtime.set_sanitizer}) and
    register a ["sanitizer"] section in the {!Stats_report}.  Call before
    the program under test starts threads.  [analyze:false] records the
    event stream without analyzing it. *)
val attach : ?analyze:bool -> Runtime.t -> t

(** Findings so far (no final audit). *)
val report : t -> report

(** Run the exhaustive coherence audit over every live object and return
    the final report. *)
val finalize : t -> report

(** {1 Offline lint} *)

(** Replay a recorded event stream through the same engine; coherence
    auditing needs the live runtime, so an offline report carries races
    and lock-order cycles only. *)
val lint_events : Event.t list -> report

(** [lint_trace records] lints the ["san"]-category records of a
    {!Sim.Trace} dump. *)
val lint_trace : Sim.Trace.record list -> report
