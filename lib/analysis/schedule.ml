(* Serializable schedule trees: the decision trail of one explored
   execution, in a stable text format, so a counterexample found by
   {!Modelcheck} can be written out ([--schedule-out]), inspected, and
   replayed later ([--schedule-in]) — on the same binary and fixture the
   replay is bit-identical.

   Format (tab-separated, one decision per line):

   {v
   # ambercheck schedule v1
   # <free-form comment lines>
   <domain> TAB <chosen index> TAB <candidate count> TAB <ident> TAB <key> TAB <label>
   v}

   [domain] is [event] (which pending engine event fired), [fiber]
   (which ready thread a machine dispatched) or [fault] (what the medium
   did to a packet).  Only the domain and chosen index drive a replay;
   ident/key/label are recorded so a human can read the schedule and so
   replay can detect divergence. *)

type decision = {
  dom : Sim.Choice.domain;
  index : int;  (* which candidate was taken *)
  ncands : int;  (* how many there were *)
  ident : string;
  key : string;
  label : string;
}

type t = decision list

let magic = "# ambercheck schedule v1"

let of_choice (c : Sim.Choice.candidate) ~index ~ncands =
  {
    dom = c.Sim.Choice.dom;
    index;
    ncands;
    ident = c.Sim.Choice.ident;
    key = c.Sim.Choice.key;
    label = c.Sim.Choice.label;
  }

(* Labels are machine-generated and never contain tabs or newlines, but
   sanitize anyway so a schedule file always round-trips line-per-line. *)
let clean s =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s

let decision_to_line d =
  Printf.sprintf "%s\t%d\t%d\t%s\t%s\t%s"
    (Sim.Choice.domain_name d.dom)
    d.index d.ncands (clean d.ident) (clean d.key) (clean d.label)

let decision_of_line line =
  match String.split_on_char '\t' line with
  | [ dom; index; ncands; ident; key; label ] -> (
    match
      (Sim.Choice.domain_of_name dom, int_of_string_opt index,
       int_of_string_opt ncands)
    with
    | Some dom, Some index, Some ncands when index >= 0 && ncands > index ->
      Some { dom; index; ncands; ident; key; label }
    | _ -> None)
  | _ -> None

let to_string ?(comments = []) (t : t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  List.iter
    (fun c ->
      Buffer.add_string b ("# " ^ clean c);
      Buffer.add_char b '\n')
    comments;
  List.iter
    (fun d ->
      Buffer.add_string b (decision_to_line d);
      Buffer.add_char b '\n')
    t;
  Buffer.contents b

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when String.trim first = magic ->
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let line = String.trim line in
        if line = "" || String.length line > 0 && line.[0] = '#' then
          parse acc rest
        else (
          match decision_of_line line with
          | Some d -> parse (d :: acc) rest
          | None -> Error (Printf.sprintf "bad schedule line: %S" line))
    in
    parse [] rest
  | _ -> Error "not an ambercheck schedule (missing version header)"

let save ?comments path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?comments t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string s)

let pp ppf (t : t) =
  List.iteri
    (fun i d ->
      Format.fprintf ppf "%4d  %-5s %d/%d  %s@." i
        (Sim.Choice.domain_name d.dom)
        d.index d.ncands
        (if d.label = "" then d.key else d.label))
    t
