(* AmberCheck: systematic schedule-space exploration of the runtime's
   distributed protocols.

   One {!run_one} executes a whole simulated cluster under a
   {!Sim.Choice} chooser: every scheduling decision point — which
   pending engine event fires (deliveries, timers), which ready fiber a
   machine dispatches, what the medium does to a retransmittable packet
   — is reified as a recorded decision.  The explorer drives depth-first
   replay over those decisions with sleep-set / persistent-set
   partial-order reduction: after each execution it looks for racing
   decision pairs (their conflict-key sets intersect) and enqueues the
   reversed prefix; commuting decisions are never reordered, and a
   branch whose whole candidate set is asleep is pruned without running
   the suffix.

   Conflict keys come in two layers:

   - {e static} keys attached to the candidate itself: [net:n<dst>] on
     deliveries, fault verbs and retransmit timers (all traffic into one
     node races on that node's protocol tables), [node:<m>] on machine
     scheduler events (dispatch/chunk order is that node's ready-queue
     state);
   - {e dynamic} keys observed while the chosen alternative executes,
     harvested from the AmberSan instrumentation hooks (same-object
     invokes [obj:<addr>], same-lock acquires [lock:<addr>],
     same-thread lifecycle [tcb:<tid>], future resolve/await
     [fut:<id>] — the sanitizer's happens-before vocabulary).  Dynamic
     keys are what make the reduction sound across nodes: a fiber
     decision carries no static key at all and commutes with everything
     it did not observably touch.

   Every complete execution is audited: AmberSan finalize (races,
   lock-order cycles, location-protocol audits) plus terminal
   invariants — the main thread finished (a quiesced engine with an
   unfinished main is a deadlock under that schedule), no recorded
   thread failures, the fixture's own oracle, exactly-once future
   resolution, no leaked invocation frames, no object left with a
   non-zero writer count, no span left open.  A violation yields a
   replayable {!Schedule.t} counterexample. *)

open Amber
module Choice = Sim.Choice

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

type fixture = {
  fname : string;
  descr : string;
  faults : bool;  (* offer deliver/drop/dup choices on numbered packets *)
  budget : int;  (* default per-execution non-deliver fault budget *)
  cfg : Config.t;
  body : Runtime.t -> unit -> string list;
      (* runs as the program's main thread; returns the oracle closure,
         evaluated after the engine quiesces (deliveries and acks may
         still be in flight when the main thread returns) *)
}

let fixture_name f = f.fname
let fixture_descr f = f.descr

(* Two nodes, one CPU each: cross-node concurrency is exactly the event
   interleaving the checker controls, and no two chunk events of one
   node ever coexist — which keeps the schedule space meaningful
   instead of merely wide.  Two RPC servers per node lets server work
   overlap a blocked nested call without flooding the initial ready
   queues. *)
let base_cfg () =
  let cfg = Config.make ~nodes:2 ~cpus:1 () in
  { cfg with Config.rpc_servers_per_node = 2 }

let replica_fixture =
  {
    fname = "replica";
    descr = "replica grant/recall vs. object move vs. writer";
    faults = false;
    budget = 0;
    cfg = base_cfg ();
    body =
      (fun rt ->
        let obj = Runtime.create_object rt ~size:64 ~name:"cell" (ref 0) in
        let lock = Sync.Lock.create rt ~name:"cell-lock" () in
        Coherence.install rt ~copy:(fun r -> ref !r) obj ~dest:1;
        (* The writer's invalidation recalls the replica and the re-grant
           races the mover; the lock orders the data accesses themselves
           (AmberSan must stay quiet — the protocol interleavings are the
           subject, not a data race in the fixture). *)
        let writer =
          Athread.start rt ~name:"writer" (fun () ->
              Sync.Lock.with_lock rt lock (fun () ->
                  Invoke.invoke rt obj (fun c -> incr c));
              Coherence.install rt ~copy:(fun r -> ref !r) obj ~dest:1)
        in
        let mover =
          Athread.start rt ~name:"mover" (fun () ->
              Mobility.move_to rt obj ~dest:1)
        in
        let reader =
          Athread.start rt ~name:"reader" (fun () ->
              Runtime.migrate_self rt ~dest:1 ();
              Sync.Lock.with_lock rt lock (fun () ->
                  Invoke.invoke rt ~mode:San_hooks.Read obj (fun c -> !c)))
        in
        let seen = Athread.join rt reader in
        Athread.join rt writer;
        Athread.join rt mover;
        let final = Invoke.invoke rt ~mode:San_hooks.Read obj (fun c -> !c) in
        fun () ->
          let v = ref [] in
          if final <> 1 then
            v :=
              Printf.sprintf "lost update: final value %d, wanted 1" final
              :: !v;
          if seen <> 0 && seen <> 1 then
            v :=
              Printf.sprintf
                "replica read returned %d, a state the object never held" seen
              :: !v;
          !v);
  }

let future_fixture =
  {
    fname = "future";
    descr = "future resolve vs. object migration";
    faults = false;
    budget = 0;
    cfg = base_cfg ();
    body =
      (fun rt ->
        let obj = Runtime.create_object rt ~size:128 ~name:"target" (ref 0) in
        Mobility.move_to rt obj ~dest:1;
        let fut =
          Future.invoke_async rt obj (fun c ->
              incr c;
              !c)
        in
        (* race the helper's chase and the resolution notify against a
           move back to the issuer's node *)
        Mobility.move_to rt obj ~dest:0;
        let got = Future.await rt fut in
        let final = Invoke.invoke rt ~mode:San_hooks.Read obj (fun c -> !c) in
        fun () ->
          let v = ref [] in
          if got <> 1 then
            v :=
              Printf.sprintf "await returned %d, wanted 1 (async ran %s)" got
                (if got = 0 then "never" else "twice?")
              :: !v;
          if final <> 1 then
            v := Printf.sprintf "final value %d, wanted 1" final :: !v;
          if not (Future.is_resolved fut) then
            v := "future not resolved after await" :: !v;
          !v);
  }

let rpc_fixture =
  {
    fname = "rpc";
    descr = "RPC retransmit vs. dedup-entry retirement";
    faults = true;
    budget = 1;
    cfg =
      {
        (base_cfg ()) with
        Config.rpc_reliable = true;
        (* a tight retirement count window is what the PR-6 bug needs:
           the safe policy also waits out the arrival horizon, the
           mutated one retires on the count alone *)
        rpc_retire_window = 2;
        rpc_rto = 2e-3;
      };
    body =
      (fun rt ->
        let rpc = Runtime.rpc rt in
        let n = 4 in
        let hits = Array.make n 0 in
        for k = 0 to n - 1 do
          Topaz.Rpc.send_reliable rpc ~src:0 ~dst:1 ~size:64
            ~kind:(Printf.sprintf "probe%d" k) (fun () ->
              hits.(k) <- hits.(k) + 1)
        done;
        fun () ->
          let v = ref [] in
          Array.iteri
            (fun k c ->
              if c <> 1 then
                v :=
                  Printf.sprintf
                    "datagram probe%d delivered %d times (exactly-once \
                     violated)"
                    k c
                  :: !v)
            hits;
          !v);
  }

let steal_fixture =
  {
    fname = "steal";
    descr = "work stealing vs. join";
    faults = false;
    budget = 0;
    cfg = base_cfg ();
    body =
      (fun rt ->
        let worker =
          Athread.start rt ~name:"worker" (fun () ->
              Sim.Fiber.consume 150e-6;
              Sim.Fiber.yield ();
              Sim.Fiber.consume 150e-6;
              42)
        in
        let wtcb = Athread.tcb worker in
        let wts = Athread.tstate worker in
        (* A rival steal attempt — the grab sequence the balancer's
           stealer performs, racing main's join and the worker's own
           progress.  Only fires when the worker is sitting in node 0's
           ready queue at that instant; the chooser decides when the
           instant is. *)
        ignore
          (Sim.Engine.schedule (Runtime.engine rt) ~key:"node:0"
             ~label:"steal-attempt" ~delay:100e-6 (fun () ->
               let vm = Runtime.machine rt 0 in
               match
                 Hw.Machine.take_ready vm (fun t ->
                     Hw.Machine.tcb_id t = Hw.Machine.tcb_id wtcb)
               with
               | None -> ()
               | Some tcb ->
                 Hw.Machine.park tcb;
                 Runtime.with_san rt (fun h ->
                     h.San_hooks.on_steal ~tcb ~victim:0 ~thief:1);
                 let ctrs = Runtime.counters rt in
                 ctrs.Runtime.threads_stolen <-
                   ctrs.Runtime.threads_stolen + 1;
                 Runtime.migrate_thread rt wts ~dest:1)
            : Sim.Engine.event_id);
        let got = Athread.join rt worker in
        fun () ->
          if got <> 42 then
            [ Printf.sprintf "join returned %d, worker computed 42" got ]
          else []);
  }

(* Crash fixtures run the reliable transport with a tight retransmit
   budget: a transaction against the corpse must fail after a handful of
   timer events, keeping the schedule space tractable.  The scheduled
   crash is itself an engine event (static key [node:<n>]), so the
   checker reorders the moment of death against every delivery and
   dispatch it races with. *)
let crash_cfg ~nodes crashes =
  let cfg = Config.make ~nodes ~cpus:1 ~crashes () in
  {
    cfg with
    Config.rpc_servers_per_node = 2;
    (* Crash fixtures need the failure detector even when the crash is
       injected from the fixture body rather than [cfg.crashes] (which
       is what normally switches the transport to reliable mode). *)
    rpc_reliable = true;
    rpc_rto = 2e-3;
    rpc_max_retransmits = 4;
  }

(* The bodies below never let the main thread touch an object that can
   be mastered on the crashing node: a remote invoke migrates the
   calling thread to the master, and a main thread that dies with the
   corpse would read as a deadlock under every such schedule.  All
   crash-prone work runs in joined worker threads; a worker killed by
   the crash surfaces as [Node_dead] from its join. *)
let crash_promo_fixture =
  {
    fname = "crash-promo";
    descr = "fail-stop crash vs. replica recall and promotion";
    faults = false;
    budget = 0;
    cfg =
      crash_cfg ~nodes:2
        [ { Config.cnode = 1; at = 0.8e-3; restart = None } ];
    body =
      (fun rt ->
        let obj = Runtime.create_object rt ~size:64 ~name:"cell" (ref 0) in
        let guard f =
          try f ()
          with Topaz.Rpc.Node_dead _ | Aobject.Object_lost _ -> ()
        in
        guard (fun () -> Mobility.move_to rt obj ~dest:1);
        guard (fun () ->
            Coherence.install rt ~copy:(fun r -> ref !r) obj ~dest:0);
        (* The write's invalidation recalls node 0's replica at the
           master — racing the master's death and the promotion that
           follows.  An acked write implies the recall completed, so a
           surviving copy must show it. *)
        let writer =
          Athread.start rt ~name:"writer" (fun () ->
              match Invoke.invoke rt obj (fun c -> incr c) with
              | () -> `Wrote
              | exception Topaz.Rpc.Node_dead _ -> `Dead
              | exception Aobject.Object_lost _ -> `Lost)
        in
        let wrote =
          match Athread.join rt writer with
          | `Wrote -> true
          | `Dead | `Lost -> false
          | exception Topaz.Rpc.Node_dead _ -> false
          | exception Aobject.Object_lost _ -> false
        in
        let reader =
          Athread.start rt ~name:"reader" (fun () ->
              match Invoke.invoke rt ~mode:San_hooks.Read obj (fun c -> !c) with
              | v -> `Read v
              | exception Topaz.Rpc.Node_dead _ -> `Dead
              | exception Aobject.Object_lost _ -> `Lost)
        in
        let final =
          match Athread.join rt reader with
          | r -> r
          | exception Topaz.Rpc.Node_dead _ -> `Dead
          | exception Aobject.Object_lost _ -> `Lost
        in
        fun () ->
          match final with
          | `Read v when v < 0 || v > 1 ->
            [ Printf.sprintf "read %d, a state the object never held" v ]
          | `Read 0 when wrote ->
            [ "acked write vanished from a surviving copy (lost update)" ]
          | _ -> []);
  }

let crash_move_fixture =
  {
    fname = "crash-move";
    descr = "fail-stop crash vs. object move and home-chain repair";
    faults = false;
    budget = 0;
    cfg = crash_cfg ~nodes:3 [];
    body =
      (fun rt ->
        let obj = Runtime.create_object rt ~size:64 ~name:"wanderer" (ref 7) in
        (* The crash is ordered {e causally}, not by timestamp: under
           the chooser any pending event may fire next regardless of its
           virtual time, so a cfg-scheduled crash almost always preempts
           the move and the "crash after the move completed" state this
           fixture is about would be unreachable.  Calling
           {!Runtime.fail_stop} from the body pins the setup — move
           done, replica granted — while the chooser still explores
           every interleaving of recovery against the in-flight
           reader. *)
        let guard f =
          try f ()
          with Topaz.Rpc.Node_dead _ | Aobject.Object_lost _ -> ()
        in
        (* The transport's failure detector can trip spuriously when the
           chooser starves an ack past the retransmit budget — then the
           move rolls back and the object simply stays home, which the
           readers below tolerate (they only require {e some} live
           route). *)
        guard (fun () -> Mobility.move_to rt obj ~dest:1);
        guard (fun () -> Coherence.install rt ~copy:(fun r -> ref !r) obj ~dest:2);
        (* [install] is advisory: it can return without granting (racing
           writer, spurious failure-detector trip, ...).  Only an
           actually-installed snapshot obliges recovery to promote, so
           probe the real grant state rather than trusting the call. *)
        let installed =
          List.mem 2 obj.Aobject.replicas
          && Aobject.snapshot obj ~node:2 <> None
        in
        let read_once name =
          Athread.start rt ~name (fun () ->
              match Invoke.invoke rt ~mode:San_hooks.Read obj (fun c -> !c) with
              | v -> `Read v
              | exception Topaz.Rpc.Node_dead _ -> `Dead
              | exception Aobject.Object_lost _ -> `Lost)
        in
        (* One reader in flight at the instant of death: it may settle
           before the crash, die with the corpse, or chase through
           recovery — all fine as long as a read that does complete
           returns 7. *)
        let early = read_once "early-reader" in
        Runtime.fail_stop rt ~node:1;
        (* Node 0's home entry forwarded through node 1 while the master
           lived there.  Recovery must promote node 2's replica and
           re-point the entry at it, so a post-funeral retry always gets
           through — while the [skip-home-repair] mutation sends every
           retry down the stale entry into the corpse. *)
        let rec go k =
          if k = 0 then `Gave_up
          else
            match Athread.join rt (read_once "reader") with
            | (`Read _ | `Lost) as r -> r
            | `Dead -> go (k - 1)
            | exception Topaz.Rpc.Node_dead _ -> go (k - 1)
            | exception Aobject.Object_lost _ -> `Lost
        in
        let got = go 3 in
        let early_got =
          match Athread.join rt early with
          | r -> r
          | exception Topaz.Rpc.Node_dead _ -> `Dead
          | exception Aobject.Object_lost _ -> `Lost
        in
        fun () ->
          let bad_read tag r =
            match r with
            | `Read v when v <> 7 ->
              [ Printf.sprintf "%s read %d from a master that always held 7"
                  tag v ]
            | `Lost when installed ->
              [ Printf.sprintf
                  "%s: object lost though a replica survived on node 2" tag ]
            | _ -> []
          in
          bad_read "early reader" early_got
          @ bad_read "retry reader" got
          @ (match got with
            | `Gave_up ->
              [ "no surviving route to a live object (reader gave up)" ]
            | _ -> []));
  }

let fixtures =
  [
    replica_fixture;
    future_fixture;
    rpc_fixture;
    steal_fixture;
    crash_promo_fixture;
    crash_move_fixture;
  ]

let find_fixture name =
  List.find_opt (fun f -> f.fname = name) fixtures

(* ------------------------------------------------------------------ *)
(* Mutations (known-bug re-introductions for checker smoke tests)      *)
(* ------------------------------------------------------------------ *)

type mutation = Dedup_count_window | Skip_home_repair

let mutation_names = [ "dedup-count-window"; "skip-home-repair" ]

let mutation_of_string = function
  | "dedup-count-window" -> Some Dedup_count_window
  | "skip-home-repair" -> Some Skip_home_repair
  | _ -> None

let apply_mutation m f =
  match m with
  | Dedup_count_window ->
    { f with cfg = { f.cfg with Config.rpc_unsafe_dedup = true } }
  | Skip_home_repair ->
    (* Fail-stop recovery without the chain-repair sweep: descriptors
       still routing through the corpse are left stale, and a chase down
       one dies of [Node_dead] though the object has a live master. *)
    { f with cfg = { f.cfg with Config.crash_skip_repair = true } }

(* ------------------------------------------------------------------ *)
(* Conflict keys                                                       *)
(* ------------------------------------------------------------------ *)

(* One recorded decision of one execution. *)
type entry = {
  cands : Choice.candidate array;
  chosen : int;
  mutable dyn : string list;  (* dynamic keys observed while it ran *)
}

(* The key set a decision conflicts on.  An [Event] or [Fault] decision
   with no static key is unknown state — it conflicts with everything
   ("*").  A [Fiber] decision deliberately has {e no} static component:
   dispatch order matters only through what the dispatched code
   observably touched, which is exactly its dynamic keys; an empty set
   commutes with everything (e.g. the startup order of idle RPC server
   fibers). *)
let keyset (e : entry) =
  let c = e.cands.(e.chosen) in
  match c.Choice.dom with
  | Choice.Fiber -> e.dyn
  | Choice.Event | Choice.Fault ->
    if c.Choice.key = "" then [ "*" ] else c.Choice.key :: e.dyn

let conflict ka kb =
  List.mem "*" ka || List.mem "*" kb
  || List.exists (fun k -> List.mem k kb) ka

(* ------------------------------------------------------------------ *)
(* Sanitizer-hook recorder: dynamic conflict keys                      *)
(* ------------------------------------------------------------------ *)

(* Wrap the attached AmberSan hooks so that every instrumentation event
   also reports its subject as a dynamic conflict key of the
   currently-executing decision, and future resolutions are counted for
   the all-futures-resolved invariant. *)
let recording_hooks eng ~resolved (h : San_hooks.t) : San_hooks.t =
  let note fmt = Printf.ksprintf (Sim.Engine.note_access eng) fmt in
  let obj o = note "obj:%d" (Aobject.addr_of_any o) in
  {
    San_hooks.on_thread_start =
      (fun ~parent ~child ->
        note "tcb:%d" (Hw.Machine.tcb_id child);
        h.San_hooks.on_thread_start ~parent ~child);
    on_thread_join =
      (fun ~child ->
        note "tcb:%d" (Hw.Machine.tcb_id child);
        h.San_hooks.on_thread_join ~child);
    on_migrate =
      (fun ~tcb ~src ~dst ->
        note "tcb:%d" (Hw.Machine.tcb_id tcb);
        h.San_hooks.on_migrate ~tcb ~src ~dst);
    on_object_created =
      (fun o ->
        obj o;
        h.San_hooks.on_object_created o);
    on_object_destroyed =
      (fun ~addr ->
        note "obj:%d" addr;
        h.San_hooks.on_object_destroyed ~addr);
    on_sync_created =
      (fun ~addr ~kind ->
        note "lock:%d" addr;
        h.San_hooks.on_sync_created ~addr ~kind);
    on_access =
      (fun o m ->
        obj o;
        h.San_hooks.on_access o m);
    on_access_end =
      (fun o ->
        obj o;
        h.San_hooks.on_access_end o);
    on_lock_acquired =
      (fun ~addr ~name ->
        note "lock:%d" addr;
        h.San_hooks.on_lock_acquired ~addr ~name);
    on_lock_released =
      (fun ~addr ->
        note "lock:%d" addr;
        h.San_hooks.on_lock_released ~addr);
    on_barrier_arrive =
      (fun ~addr ~gen ->
        note "lock:%d" addr;
        h.San_hooks.on_barrier_arrive ~addr ~gen);
    on_barrier_release =
      (fun ~addr ~gen ->
        note "lock:%d" addr;
        h.San_hooks.on_barrier_release ~addr ~gen);
    on_barrier_resume =
      (fun ~addr ~gen ->
        note "lock:%d" addr;
        h.San_hooks.on_barrier_resume ~addr ~gen);
    on_cond_signal =
      (fun ~token ->
        note "cond:%d" token;
        h.San_hooks.on_cond_signal ~token);
    on_cond_wake =
      (fun ~token ->
        note "cond:%d" token;
        h.San_hooks.on_cond_wake ~token);
    on_move_begin =
      (fun ~addr ->
        note "obj:%d" addr;
        h.San_hooks.on_move_begin ~addr);
    on_move_end =
      (fun o ->
        obj o;
        h.San_hooks.on_move_end o);
    on_replica_read =
      (fun o ~node ~epoch ->
        obj o;
        h.San_hooks.on_replica_read o ~node ~epoch);
    on_steal =
      (fun ~tcb ~victim ~thief ->
        note "tcb:%d" (Hw.Machine.tcb_id tcb);
        h.San_hooks.on_steal ~tcb ~victim ~thief);
    on_future_resolve =
      (fun ~id ->
        incr resolved;
        note "fut:%d" id;
        h.San_hooks.on_future_resolve ~id);
    on_future_await =
      (fun ~id ->
        note "fut:%d" id;
        h.San_hooks.on_future_await ~id);
  }

(* ------------------------------------------------------------------ *)
(* One controlled execution                                            *)
(* ------------------------------------------------------------------ *)

exception Sleep_blocked
exception Too_deep

exception
  Divergence of { depth : int; want : int; have : int }
      (* a replayed prefix asked for a candidate index the execution
         does not offer — schedule from another binary or fixture *)

type run_result =
  | Blocked of int  (* sleep-set pruned after this many decisions *)
  | Run of { trail : entry array; violations : string list; truncated : bool }

let run_one ?random fx ~prefix ~sleep0 ~max_depth ~fault_budget ~section =
  let rt = Runtime.create fx.cfg in
  let san = Ambersan.attach rt in
  let resolved = ref 0 in
  (match Runtime.sanitizer rt with
  | Some h ->
    Runtime.set_sanitizer rt (recording_hooks (Runtime.engine rt) ~resolved h)
  | None -> ());
  Sim.Span.set_enabled (Runtime.spans rt) true;
  Runtime.add_report_section rt ~name:"modelcheck" section;
  let rev_trail = ref [] in
  let depth = ref 0 in
  let last = ref None in
  let sleep : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (id, key) -> Hashtbl.replace sleep id key) sleep0;
  (* A slept transition wakes as soon as a dependent one executes: keep
     only sleepers that commute with what just ran.  A sleeper's own key
     set is approximated by its static key (unknown = wake). *)
  let wake_after e =
    if Hashtbl.length sleep > 0 then begin
      let ks = keyset e in
      let stale =
        Hashtbl.fold
          (fun id key acc ->
            if conflict ks [ (if key = "" then "*" else key) ] then id :: acc
            else acc)
          sleep []
      in
      List.iter (Hashtbl.remove sleep) stale
    end
  in
  let prefix_len = Array.length prefix in
  let faults_spent = ref 0 in
  let pick dom (cands : Choice.candidate array) =
    (match !last with Some e -> wake_after e | None -> ());
    let d = !depth in
    if d >= max_depth then raise Too_deep;
    let choice =
      if d < prefix_len then begin
        let i = prefix.(d) in
        if i < 0 || i >= Array.length cands then
          raise (Divergence { depth = d; want = i; have = Array.length cands });
        i
      end
      else begin
        let n = Array.length cands in
        let asleep i = Hashtbl.mem sleep cands.(i).Choice.ident in
        if dom = Choice.Fault && !faults_spent >= fault_budget then
          (* budget exhausted: delivery is forced; alternatives of this
             decision are never enqueued either (see [explore]) *)
          if asleep 0 then raise Sleep_blocked else 0
        else begin
          match random with
          | Some rng -> Random.State.int rng n
          | None ->
            let rec find i =
              if i >= n then raise Sleep_blocked
              else if asleep i then find (i + 1)
              else i
            in
            find 0
        end
      end
    in
    if dom = Choice.Fault && choice <> 0 then incr faults_spent;
    let e = { cands; chosen = choice; dyn = [] } in
    rev_trail := e :: !rev_trail;
    last := Some e;
    incr depth;
    choice
  in
  let chooser =
    {
      Choice.pick;
      faults = fx.faults;
      note_access =
        (fun k ->
          match !last with
          | Some e -> if not (List.mem k e.dyn) then e.dyn <- k :: e.dyn
          | None -> ());
    }
  in
  let eng = Runtime.engine rt in
  let thread = ref None in
  let status =
    Fun.protect
      ~finally:(fun () -> Sim.Engine.set_chooser eng None)
      (fun () ->
        Sim.Engine.set_chooser eng (Some chooser);
        thread :=
          Some (Athread.start_on rt ~node:0 ~name:"main" (fun () -> fx.body rt));
        try
          ignore (Sim.Engine.run eng : int);
          `Complete
        with
        | Sleep_blocked -> `Blocked
        | Too_deep -> `Truncated)
  in
  match status with
  | `Blocked -> Blocked !depth
  | (`Complete | `Truncated) as status ->
    let trail = Array.of_list (List.rev !rev_trail) in
    let truncated = status = `Truncated in
    let violations = ref [] in
    let viol fmt =
      Printf.ksprintf (fun s -> violations := s :: !violations) fmt
    in
    (* A truncated execution is an exploration artifact, not a protocol
       state: its invariants are vacuous. *)
    if not truncated then begin
      let thread = Option.get !thread in
      (try Runtime.check_failures rt
       with e -> viol "thread failure: %s" (Printexc.to_string e));
      (match Hw.Machine.state (Athread.tcb thread) with
      | Hw.Machine.Finished (Sim.Fiber.Failed e) ->
        viol "main thread failed: %s" (Printexc.to_string e)
      | Hw.Machine.Finished Sim.Fiber.Completed -> (
        match (Athread.result_exn thread) () with
        | [] -> ()
        | oracle -> List.iter (fun s -> viol "oracle: %s" s) oracle)
      | Hw.Machine.Ready | Hw.Machine.Running _ | Hw.Machine.Blocked ->
        viol "deadlock: engine quiesced with the main thread unfinished");
      let sr = Ambersan.finalize san in
      if Ambersan.failed sr then
        viol "sanitizer: %s" (Format.asprintf "%a" Ambersan.pp_report sr);
      Runtime.iter_threads rt (fun ts ->
          if ts.Runtime.frames <> [] then
            viol "leaked invocation frame on tid %d"
              (Hw.Machine.tcb_id ts.Runtime.tcb));
      List.iter
        (fun (Aobject.Any o) ->
          if o.Aobject.writers <> 0 then
            viol "object %s left with %d writers in flight" o.Aobject.name
              o.Aobject.writers)
        (Runtime.objects rt);
      List.iter
        (fun f -> viol "span balance: %s" f)
        (Spanlint.lint (Sim.Span.spans (Runtime.spans rt)));
      let created = (Runtime.counters rt).Runtime.async_invocations in
      if !resolved <> created then
        viol "futures: %d created, %d resolutions observed" created !resolved
    end;
    Run { trail; violations = List.rev !violations; truncated }

(* ------------------------------------------------------------------ *)
(* Depth-first exploration with partial-order reduction                *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable schedules : int;  (* complete executions *)
  mutable pruned : int;  (* sleep-set-blocked branches *)
  mutable truncated : int;  (* executions cut off at max depth *)
  mutable decisions : int;  (* decision points executed, all runs *)
  mutable max_depth : int;
  mutable wall : float;  (* host seconds spent exploring *)
}

type outcome = {
  fixture : string;
  stats : stats;
  counterexample : (Schedule.t * string list) option;
}

let schedule_of_trail trail =
  Array.to_list trail
  |> List.map (fun e ->
         Schedule.of_choice e.cands.(e.chosen) ~index:e.chosen
           ~ncands:(Array.length e.cands))

let stats_lines st =
  [
    Printf.sprintf "schedules explored     %d" st.schedules;
    Printf.sprintf "branches slept (POR)   %d" st.pruned;
    Printf.sprintf "depth-truncated runs   %d" st.truncated;
    Printf.sprintf "decision points        %d" st.decisions;
    Printf.sprintf "max schedule depth     %d" st.max_depth;
    Printf.sprintf "wall time              %.2fs" st.wall;
  ]

type branch = { prefix : int array; sleep0 : (string * string) list }

let explore ?(max_schedules = 4000) ?(max_depth = 3000) ?fault_budget fx =
  let fault_budget = Option.value fault_budget ~default:fx.budget in
  let t0 = Unix.gettimeofday () in
  let st =
    {
      schedules = 0;
      pruned = 0;
      truncated = 0;
      decisions = 0;
      max_depth = 0;
      wall = 0.0;
    }
  in
  let section () = stats_lines st in
  (* explored (or enqueued) candidate indices per tree node, keyed by
     the choice path leading to the node *)
  let explored : (string, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 4096
  in
  let explored_at path_key =
    match Hashtbl.find_opt explored path_key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 4 in
      Hashtbl.replace explored path_key s;
      s
  in
  let stack = ref [ { prefix = [||]; sleep0 = [] } ] in
  let counterexample = ref None in
  let path_key choices upto =
    let b = Buffer.create (upto * 3) in
    for i = 0 to upto - 1 do
      Buffer.add_string b (string_of_int choices.(i));
      Buffer.add_char b ','
    done;
    Buffer.contents b
  in
  while
    !stack <> []
    && !counterexample = None
    && st.schedules + st.truncated < max_schedules
  do
    let b = List.hd !stack in
    stack := List.tl !stack;
    match
      run_one fx ~prefix:b.prefix ~sleep0:b.sleep0 ~max_depth ~fault_budget
        ~section
    with
    | Blocked d ->
      st.pruned <- st.pruned + 1;
      st.decisions <- st.decisions + d
    | Run { trail; violations; truncated } ->
      let n = Array.length trail in
      st.decisions <- st.decisions + n;
      if n > st.max_depth then st.max_depth <- n;
      if truncated then st.truncated <- st.truncated + 1
      else st.schedules <- st.schedules + 1;
      if violations <> [] then
        counterexample := Some (schedule_of_trail trail, violations)
      else begin
        let choices = Array.map (fun e -> e.chosen) trail in
        (* mark this execution's own choices explored *)
        for d = 0 to n - 1 do
          Hashtbl.replace (explored_at (path_key choices d)) choices.(d) ()
        done;
        let keysets = Array.map keyset trail in
        let faults_before = Array.make (n + 1) 0 in
        for j = 0 to n - 1 do
          let extra =
            if
              trail.(j).cands.(trail.(j).chosen).Choice.dom = Choice.Fault
              && trail.(j).chosen <> 0
            then 1
            else 0
          in
          faults_before.(j + 1) <- faults_before.(j) + extra
        done;
        let push_alt i alt =
          let set = explored_at (path_key choices i) in
          if not (Hashtbl.mem set alt) then begin
            (* transitions already taken from this node sleep in the new
               branch until something dependent wakes them *)
            let sleep0 =
              Hashtbl.fold
                (fun a () acc ->
                  let c = trail.(i).cands.(a) in
                  (c.Choice.ident, c.Choice.key) :: acc)
                set []
            in
            Hashtbl.replace set alt ();
            stack :=
              { prefix = Array.append (Array.sub choices 0 i) [| alt |]; sleep0 }
              :: !stack
          end
        in
        for j = 0 to n - 1 do
          let ej = trail.(j) in
          let cj = ej.cands.(ej.chosen) in
          match cj.Choice.dom with
          | Choice.Fault ->
            (* fault decisions are branch points, not races: explore
               every verb the budget allows *)
            for alt = 0 to Array.length ej.cands - 1 do
              if
                alt <> ej.chosen
                && (alt = 0 || faults_before.(j) < fault_budget)
              then push_alt j alt
            done
          | Choice.Event | Choice.Fiber ->
            (* race reversal: find the latest earlier decision this one
               conflicts with and schedule this transition there instead *)
            let rec back i =
              if i >= 0 then
                if
                  trail.(i).cands.(trail.(i).chosen).Choice.dom <> Choice.Fault
                  && conflict keysets.(i) keysets.(j)
                then begin
                  let ei = trail.(i) in
                  let found = ref false in
                  Array.iteri
                    (fun a (c : Choice.candidate) ->
                      if (not !found) && c.Choice.ident = cj.Choice.ident
                      then begin
                        found := true;
                        if a <> ei.chosen then push_alt i a
                      end)
                    ei.cands;
                  (* the racing transition was not yet enabled at [i]:
                     fall back to trying every alternative there
                     (classic DPOR's "add all enabled") *)
                  if not !found then
                    for a = 0 to Array.length ei.cands - 1 do
                      if a <> ei.chosen then push_alt i a
                    done
                end
                else back (i - 1)
            in
            back (j - 1)
        done
      end
  done;
  st.wall <- Unix.gettimeofday () -. t0;
  { fixture = fx.fname; stats = st; counterexample = !counterexample }

(* ------------------------------------------------------------------ *)
(* Random-walk exploration (schedule fuzzing)                          *)
(* ------------------------------------------------------------------ *)

(* A complement to systematic DFS: draw every decision uniformly at
   random from the candidate set.  Where [explore] must build up a deep
   reordering one race reversal at a time, a random walk samples the
   whole schedule space at once, so interleavings that are many
   reversals away from the timestamp order — a duplicate parked behind a
   burst of acks, say — turn up after a few thousand walks instead of
   deep in an exponential frontier.  The trade-off is the opposite of
   DFS's: no exhaustiveness, but no frontier either.  Deterministic for
   a given seed; a violating walk is returned as an ordinary replayable
   schedule. *)
let fuzz ?(max_schedules = 4000) ?(max_depth = 3000) ?fault_budget ~seed fx =
  let fault_budget = Option.value fault_budget ~default:fx.budget in
  let t0 = Unix.gettimeofday () in
  let st =
    {
      schedules = 0;
      pruned = 0;
      truncated = 0;
      decisions = 0;
      max_depth = 0;
      wall = 0.0;
    }
  in
  let section () = stats_lines st in
  let rng = Random.State.make [| seed |] in
  let counterexample = ref None in
  while
    !counterexample = None && st.schedules + st.truncated < max_schedules
  do
    match
      run_one ~random:rng fx ~prefix:[||] ~sleep0:[] ~max_depth ~fault_budget
        ~section
    with
    | Blocked _ -> assert false (* no sleep set installed *)
    | Run { trail; violations; truncated } ->
      let n = Array.length trail in
      st.decisions <- st.decisions + n;
      if n > st.max_depth then st.max_depth <- n;
      if truncated then st.truncated <- st.truncated + 1
      else st.schedules <- st.schedules + 1;
      if violations <> [] then
        counterexample := Some (schedule_of_trail trail, violations)
  done;
  st.wall <- Unix.gettimeofday () -. t0;
  { fixture = fx.fname; stats = st; counterexample = !counterexample }

(* ------------------------------------------------------------------ *)
(* Single-schedule replay                                              *)
(* ------------------------------------------------------------------ *)

(* Re-run one recorded schedule and return its violations (empty =
   clean).  Decisions beyond the recorded prefix take the default
   (first) alternative. *)
let replay ?(max_depth = 3000) fx (sched : Schedule.t) =
  let prefix = Array.of_list (List.map (fun d -> d.Schedule.index) sched) in
  let st = ref [] in
  match
    run_one fx ~prefix ~sleep0:[] ~max_depth
      ~fault_budget:max_int (* the prefix already encodes the faults *)
      ~section:(fun () -> !st)
  with
  | exception Divergence { depth; want; have } ->
    (* The schedule indexes into decision points that this build of the
       fixture no longer presents — it was recorded against a different
       mutation (or code).  Surface it as a result, not a crash: a
       counterexample that stops reproducing after a fix is the
       expected green side of a red/green replay pair. *)
    [
      Printf.sprintf
        "replay diverged at decision %d (recorded candidate %d, %d \
         available): schedule recorded against a different build or \
         mutation"
        depth want have;
    ]
  | Blocked _ -> assert false (* no sleep set installed *)
  | Run { violations; truncated; _ } ->
    if truncated then
      violations @ [ "replay truncated: schedule deeper than max depth" ]
    else violations
