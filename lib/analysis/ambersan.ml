open Amber

module Imap = Map.Make (Int)

type clock = int Imap.t

let cjoin a b = Imap.union (fun _ x y -> Some (max x y)) a b
let cget c tid = match Imap.find_opt tid c with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

module Event = struct
  type barrier_phase = Arrive | Release | Resume

  type t =
    | Thread_start of { parent : int; child : int }
    | Thread_join of { parent : int; child : int }
    | Migrate of { tid : int; src : int; dst : int }
    | Object_created of { addr : int; name : string }
    | Object_destroyed of { addr : int }
    | Sync_created of { addr : int; kind : string }
    | Access of { tid : int; addr : int; mode : San_hooks.mode }
    | Access_end of { tid : int; addr : int }
    | Lock_acquired of { tid : int; addr : int }
    | Lock_released of { tid : int; addr : int }
    | Barrier of { tid : int; addr : int; gen : int; phase : barrier_phase }
    | Cond_signal of { tid : int; token : int }
    | Cond_wake of { tid : int; token : int }
    | Replica_read of { tid : int; addr : int; node : int; epoch : int }
    | Steal of { by : int; tid : int; victim : int; thief : int }
    | Future_resolve of { tid : int; id : int }
    | Future_await of { tid : int; id : int }

  let phase_to_string = function
    | Arrive -> "arrive"
    | Release -> "release"
    | Resume -> "resume"

  let to_string = function
    | Thread_start { parent; child } ->
      Printf.sprintf "start p=%d c=%d" parent child
    | Thread_join { parent; child } ->
      Printf.sprintf "join p=%d c=%d" parent child
    | Migrate { tid; src; dst } ->
      Printf.sprintf "migrate t=%d src=%d dst=%d" tid src dst
    (* Name last so names with spaces survive the round trip. *)
    | Object_created { addr; name } -> Printf.sprintf "new 0x%x %s" addr name
    | Object_destroyed { addr } -> Printf.sprintf "del 0x%x" addr
    | Sync_created { addr; kind } -> Printf.sprintf "sync 0x%x %s" addr kind
    | Access { tid; addr; mode } ->
      Printf.sprintf "acc t=%d 0x%x %s" tid addr (San_hooks.mode_to_string mode)
    | Access_end { tid; addr } -> Printf.sprintf "fin t=%d 0x%x" tid addr
    | Lock_acquired { tid; addr } -> Printf.sprintf "acq t=%d 0x%x" tid addr
    | Lock_released { tid; addr } -> Printf.sprintf "rel t=%d 0x%x" tid addr
    | Barrier { tid; addr; gen; phase } ->
      Printf.sprintf "bar t=%d 0x%x g=%d %s" tid addr gen
        (phase_to_string phase)
    | Cond_signal { tid; token } -> Printf.sprintf "sig t=%d k=%d" tid token
    | Cond_wake { tid; token } -> Printf.sprintf "wake t=%d k=%d" tid token
    | Replica_read { tid; addr; node; epoch } ->
      Printf.sprintf "rrd t=%d 0x%x n=%d e=%d" tid addr node epoch
    | Steal { by; tid; victim; thief } ->
      Printf.sprintf "steal by=%d t=%d v=%d th=%d" by tid victim thief
    | Future_resolve { tid; id } -> Printf.sprintf "fres t=%d f=%d" tid id
    | Future_await { tid; id } -> Printf.sprintf "fawa t=%d f=%d" tid id

  (* "p=3" with the expected key -> 3; raises on mismatch. *)
  let kv key tok =
    match String.split_on_char '=' tok with
    | [ k; v ] when String.equal k key -> int_of_string v
    | _ -> failwith "Ambersan.Event.kv"

  let of_string s =
    match String.split_on_char ' ' s with
    | [ "start"; p; c ] ->
      Some (Thread_start { parent = kv "p" p; child = kv "c" c })
    | [ "join"; p; c ] ->
      Some (Thread_join { parent = kv "p" p; child = kv "c" c })
    | [ "migrate"; t; src; dst ] ->
      Some
        (Migrate { tid = kv "t" t; src = kv "src" src; dst = kv "dst" dst })
    | "new" :: addr :: (_ :: _ as name_parts) ->
      Some
        (Object_created
           {
             addr = int_of_string addr;
             name = String.concat " " name_parts;
           })
    | [ "del"; addr ] -> Some (Object_destroyed { addr = int_of_string addr })
    | [ "sync"; addr; kind ] ->
      Some (Sync_created { addr = int_of_string addr; kind })
    | [ "acc"; t; addr; m ] -> (
      match San_hooks.mode_of_string m with
      | Some mode ->
        Some (Access { tid = kv "t" t; addr = int_of_string addr; mode })
      | None -> None)
    | [ "fin"; t; addr ] ->
      Some (Access_end { tid = kv "t" t; addr = int_of_string addr })
    | [ "acq"; t; addr ] ->
      Some (Lock_acquired { tid = kv "t" t; addr = int_of_string addr })
    | [ "rel"; t; addr ] ->
      Some (Lock_released { tid = kv "t" t; addr = int_of_string addr })
    | [ "bar"; t; addr; g; ph ] ->
      let phase =
        match ph with
        | "arrive" -> Arrive
        | "release" -> Release
        | "resume" -> Resume
        | _ -> failwith "Ambersan.Event.of_string: barrier phase"
      in
      Some
        (Barrier
           { tid = kv "t" t; addr = int_of_string addr; gen = kv "g" g; phase })
    | [ "sig"; t; k ] -> Some (Cond_signal { tid = kv "t" t; token = kv "k" k })
    | [ "wake"; t; k ] -> Some (Cond_wake { tid = kv "t" t; token = kv "k" k })
    | [ "rrd"; t; addr; n; e ] ->
      Some
        (Replica_read
           {
             tid = kv "t" t;
             addr = int_of_string addr;
             node = kv "n" n;
             epoch = kv "e" e;
           })
    | [ "steal"; by; t; v; th ] ->
      Some
        (Steal
           {
             by = kv "by" by;
             tid = kv "t" t;
             victim = kv "v" v;
             thief = kv "th" th;
           })
    | [ "fres"; t; f ] ->
      Some (Future_resolve { tid = kv "t" t; id = kv "f" f })
    | [ "fawa"; t; f ] ->
      Some (Future_await { tid = kv "t" t; id = kv "f" f })
    | _ -> None

  let of_string s = try of_string s with _ -> None
end

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

type race = {
  addr : int;
  name : string;
  tid : int;
  mode : San_hooks.mode;
  prior_tid : int;
  prior_mode : San_hooks.mode;
}

let pp_race ppf r =
  Format.fprintf ppf "race on %s@0x%x: thread %d %a vs thread %d %a" r.name
    r.addr r.prior_tid San_hooks.pp_mode r.prior_mode r.tid San_hooks.pp_mode
    r.mode

type cycle = { addrs : int list; names : string list }

let pp_cycle ppf c =
  Format.fprintf ppf "lock-order cycle: %s"
    (String.concat " -> " (c.names @ [ List.hd c.names ]))

type report = {
  races : race list;
  cycles : cycle list;
  violations : Audit.violation list;
  events : int;
  threads : int;
  objects_tracked : int;
}

let findings r =
  List.length r.races + List.length r.cycles + List.length r.violations

let clean r = findings r = 0
let failed r = not (clean r)

let pp_report ppf r =
  Format.fprintf ppf
    "AmberSan: %d events, %d threads, %d objects tracked@." r.events r.threads
    r.objects_tracked;
  if clean r then Format.fprintf ppf "no findings@."
  else begin
    List.iter (fun x -> Format.fprintf ppf "%a@." pp_race x) r.races;
    List.iter (fun x -> Format.fprintf ppf "%a@." pp_cycle x) r.cycles;
    List.iter
      (fun v -> Format.fprintf ppf "coherence: %a@." Audit.pp_violation v)
      r.violations
  end

(* ------------------------------------------------------------------ *)
(* The happens-before engine                                           *)
(* ------------------------------------------------------------------ *)

module Core = struct
  (* Last access by one thread: its component of the thread clock at the
     access, plus how it accessed.  Keeping only the latest access per
     thread is sound because a thread's accesses to one object are
     totally ordered by program order. *)
  type epoch = { etid : int; etime : int; emode : San_hooks.mode }

  type obj_info = {
    oname : string;
    mutable oclock : clock;  (* published at atomic rendezvous points *)
    mutable writes : epoch list;  (* Write/Atomic frontier, one per tid *)
    mutable reads : epoch list;  (* Read frontier, one per tid *)
  }

  type barrier_info = {
    mutable pending : clock;  (* accumulated arrivals of the open gen *)
    released : (int, clock) Hashtbl.t;  (* generation -> release clock *)
  }

  type t = {
    clocks : (int, clock ref) Hashtbl.t;  (* tcb id -> vector clock *)
    objects : (int, obj_info) Hashtbl.t;
    sync_addrs : (int, unit) Hashtbl.t;
    names : (int, string) Hashtbl.t;
    locks : (int, clock) Hashtbl.t;  (* lock addr -> last-release clock *)
    barriers : (int, barrier_info) Hashtbl.t;
    signals : (int, clock) Hashtbl.t;  (* condition token -> signal clock *)
    futures : (int, clock) Hashtbl.t;  (* future id -> resolve clock *)
    open_accesses : (int * int, San_hooks.mode list ref) Hashtbl.t;
    held : (int, int list ref) Hashtbl.t;  (* tid -> held locks, LIFO *)
    lock_edges : (int * int, unit) Hashtbl.t;  (* held -> acquired *)
    mutable races : race list;
    race_keys : (int * int * int, unit) Hashtbl.t;
    mutable events : int;
  }

  let create () =
    {
      clocks = Hashtbl.create 32;
      objects = Hashtbl.create 64;
      sync_addrs = Hashtbl.create 16;
      names = Hashtbl.create 64;
      locks = Hashtbl.create 16;
      barriers = Hashtbl.create 8;
      signals = Hashtbl.create 16;
      futures = Hashtbl.create 16;
      open_accesses = Hashtbl.create 16;
      held = Hashtbl.create 16;
      lock_edges = Hashtbl.create 16;
      races = [];
      race_keys = Hashtbl.create 16;
      events = 0;
    }

  let thread_clock t tid =
    match Hashtbl.find_opt t.clocks tid with
    | Some r -> r
    | None ->
      let r = ref (Imap.singleton tid 1) in
      Hashtbl.replace t.clocks tid r;
      r

  let tick r tid = r := Imap.add tid (cget !r tid + 1) !r

  let obj_info t addr =
    match Hashtbl.find_opt t.objects addr with
    | Some o -> o
    | None ->
      let o =
        {
          oname =
            (match Hashtbl.find_opt t.names addr with
            | Some n -> n
            | None -> Printf.sprintf "0x%x" addr);
          oclock = Imap.empty;
          writes = [];
          reads = [];
        }
      in
      Hashtbl.replace t.objects addr o;
      o

  let barrier_info t addr =
    match Hashtbl.find_opt t.barriers addr with
    | Some b -> b
    | None ->
      let b = { pending = Imap.empty; released = Hashtbl.create 8 } in
      Hashtbl.replace t.barriers addr b;
      b

  let is_sync t addr = Hashtbl.mem t.sync_addrs addr

  let record_race t ~addr ~name ~tid ~mode ~(prior : epoch) =
    let key = (addr, min tid prior.etid, max tid prior.etid) in
    if not (Hashtbl.mem t.race_keys key) then begin
      Hashtbl.replace t.race_keys key ();
      t.races <-
        {
          addr;
          name;
          tid;
          mode;
          prior_tid = prior.etid;
          prior_mode = prior.emode;
        }
        :: t.races
    end

  (* Replace [tid]'s entry in an epoch frontier. *)
  let update_frontier frontier ep =
    ep :: List.filter (fun e -> e.etid <> ep.etid) frontier

  let feed_access t ~tid ~addr ~mode =
    let o = obj_info t addr in
    let cr = thread_clock t tid in
    (* An atomic action is serialized at the object: it rendezvouses with
       every earlier atomic action through the object's clock.  Joining at
       entry (not just exit) keeps overlapping atomic invocations — e.g.
       two threads holding invocation frames on the same anchor — from
       looking concurrent. *)
    (match mode with
    | San_hooks.Atomic -> cr := cjoin !cr o.oclock
    | San_hooks.Read | San_hooks.Write -> ());
    let ordered (e : epoch) = e.etime <= cget !cr e.etid in
    let conflicts frontier =
      List.filter (fun e -> e.etid <> tid && not (ordered e)) frontier
    in
    let prior =
      match mode with
      | San_hooks.Read -> conflicts o.writes
      | San_hooks.Write | San_hooks.Atomic ->
        conflicts o.writes @ conflicts o.reads
    in
    List.iter
      (fun p -> record_race t ~addr ~name:o.oname ~tid ~mode ~prior:p)
      prior;
    let ep = { etid = tid; etime = cget !cr tid; emode = mode } in
    (match mode with
    | San_hooks.Read -> o.reads <- update_frontier o.reads ep
    | San_hooks.Write | San_hooks.Atomic ->
      o.writes <- update_frontier o.writes ep);
    (match mode with
    | San_hooks.Atomic -> o.oclock <- cjoin o.oclock !cr
    | San_hooks.Read | San_hooks.Write -> ());
    tick cr tid;
    let stack =
      match Hashtbl.find_opt t.open_accesses (tid, addr) with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.replace t.open_accesses (tid, addr) s;
        s
    in
    stack := mode :: !stack

  let feed_access_end t ~tid ~addr =
    match Hashtbl.find_opt t.open_accesses (tid, addr) with
    | None -> ()
    | Some stack -> (
      match !stack with
      | [] -> ()
      | mode :: rest ->
        stack := rest;
        (match mode with
        | San_hooks.Atomic ->
          (* Exit rendezvous: absorb publications made by invocations that
             overlapped this one, and publish our post-access clock. *)
          let o = obj_info t addr in
          let cr = thread_clock t tid in
          cr := cjoin !cr o.oclock;
          o.oclock <- cjoin o.oclock !cr
        | San_hooks.Read | San_hooks.Write -> ()))

  let held_stack t tid =
    match Hashtbl.find_opt t.held tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace t.held tid s;
      s

  let feed t ev =
    t.events <- t.events + 1;
    match ev with
    | Event.Thread_start { parent; child } ->
      let cc = thread_clock t child in
      if parent >= 0 then begin
        let pc = thread_clock t parent in
        cc := cjoin !cc !pc;
        tick pc parent
      end
    | Event.Thread_join { parent; child } ->
      if parent >= 0 then begin
        let pc = thread_clock t parent in
        let cc = thread_clock t child in
        pc := cjoin !pc !cc
      end
    | Event.Migrate _ ->
      (* Clocks are keyed by tcb id, which survives migration; the
         thread-state flight itself is program order. *)
      ()
    | Event.Object_created { addr; name } ->
      Hashtbl.replace t.names addr name;
      (* Heap addresses are reused after destroy: a fresh object at a
         known address starts with no access history. *)
      Hashtbl.replace t.objects addr
        { oname = name; oclock = Imap.empty; writes = []; reads = [] }
    | Event.Object_destroyed { addr } -> Hashtbl.remove t.objects addr
    | Event.Sync_created { addr; kind = _ } ->
      Hashtbl.replace t.sync_addrs addr ()
    | Event.Access { tid; addr; mode } ->
      if not (is_sync t addr) then feed_access t ~tid ~addr ~mode
    | Event.Access_end { tid; addr } ->
      if not (is_sync t addr) then feed_access_end t ~tid ~addr
    | Event.Lock_acquired { tid; addr } ->
      let cr = thread_clock t tid in
      (match Hashtbl.find_opt t.locks addr with
      | Some l -> cr := cjoin !cr l
      | None -> ());
      let h = held_stack t tid in
      List.iter
        (fun prior ->
          if prior <> addr then Hashtbl.replace t.lock_edges (prior, addr) ())
        !h;
      h := addr :: !h
    | Event.Lock_released { tid; addr } ->
      let cr = thread_clock t tid in
      let l =
        match Hashtbl.find_opt t.locks addr with
        | Some l -> l
        | None -> Imap.empty
      in
      Hashtbl.replace t.locks addr (cjoin l !cr);
      tick cr tid;
      let h = held_stack t tid in
      let removed = ref false in
      h :=
        List.filter
          (fun a ->
            if (not !removed) && a = addr then begin
              removed := true;
              false
            end
            else true)
          !h
    | Event.Barrier { tid; addr; gen; phase } -> (
      let b = barrier_info t addr in
      let cr = thread_clock t tid in
      match phase with
      | Event.Arrive -> b.pending <- cjoin b.pending !cr
      | Event.Release ->
        Hashtbl.replace b.released gen b.pending;
        cr := cjoin !cr b.pending;
        b.pending <- Imap.empty;
        tick cr tid
      | Event.Resume ->
        (match Hashtbl.find_opt b.released gen with
        | Some c -> cr := cjoin !cr c
        | None -> ());
        tick cr tid)
    | Event.Cond_signal { tid; token } ->
      let cr = thread_clock t tid in
      Hashtbl.replace t.signals token !cr;
      tick cr tid
    | Event.Cond_wake { tid; token } -> (
      let cr = thread_clock t tid in
      match Hashtbl.find_opt t.signals token with
      | Some c -> cr := cjoin !cr c
      | None -> ())
    | Event.Replica_read _ ->
      (* The race-relevant Read access arrives as its own [Access] event;
         staleness is checked online against ground truth, which a replayed
         trace no longer has. *)
      ()
    | Event.Steal { by; tid; victim = _; thief = _ } ->
      (* The dequeue at the victim happens-before the stolen thread runs
         at the thief: everything ordered before the dequeuing agent [by]
         (the steal-request server fiber) flows into the stolen thread.
         Without this edge, state published at the victim under a lock
         the handler synchronized with would look concurrent with the
         thread's post-steal accesses.  [by = -1] when the dequeue ran
         outside any fiber — then there is no agent clock to join. *)
      if by >= 0 then begin
        let bc = thread_clock t by in
        let sc = thread_clock t tid in
        sc := cjoin !sc !bc;
        tick bc by
      end
    | Event.Future_resolve { tid; id } ->
      (* Same shape as a condition signal: publish the resolver's clock
         under the future id; the awaiter joins it when it observes the
         resolution. *)
      let cr = thread_clock t tid in
      Hashtbl.replace t.futures id !cr;
      tick cr tid
    | Event.Future_await { tid; id } -> (
      let cr = thread_clock t tid in
      match Hashtbl.find_opt t.futures id with
      | Some c -> cr := cjoin !cr c
      | None -> ())

  let lock_name t addr =
    match Hashtbl.find_opt t.names addr with
    | Some n -> n
    | None -> Printf.sprintf "0x%x" addr

  (* Cycles in the lock-order graph, deduplicated by node set.  The graph
     is tiny (one node per lock ever held nested), so a plain path-list
     DFS is fine. *)
  let lock_cycles t =
    let adj = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (a, b) () ->
        let cur = try Hashtbl.find adj a with Not_found -> [] in
        Hashtbl.replace adj a (b :: cur))
      t.lock_edges;
    let cycles = ref [] in
    let seen_sets = Hashtbl.create 4 in
    let finished = Hashtbl.create 16 in
    let rec dfs path node =
      if List.mem node path then begin
        let rec take acc = function
          | [] -> acc
          | x :: rest -> if x = node then x :: acc else take (x :: acc) rest
        in
        let cyc = take [] path in
        let key = List.sort compare cyc in
        if not (Hashtbl.mem seen_sets key) then begin
          Hashtbl.replace seen_sets key ();
          cycles := cyc :: !cycles
        end
      end
      else if not (Hashtbl.mem finished node) then begin
        List.iter
          (dfs (node :: path))
          (try Hashtbl.find adj node with Not_found -> []);
        Hashtbl.replace finished node ()
      end
    in
    Hashtbl.iter (fun node _ -> dfs [] node) adj;
    List.map
      (fun addrs -> { addrs; names = List.map (lock_name t) addrs })
      !cycles

  let report ?(violations = []) t =
    {
      races = List.rev t.races;
      cycles = lock_cycles t;
      violations;
      events = t.events;
      threads = Hashtbl.length t.clocks;
      objects_tracked = Hashtbl.length t.objects;
    }
end

(* ------------------------------------------------------------------ *)
(* Online sanitizer                                                    *)
(* ------------------------------------------------------------------ *)

type t = {
  rt : Runtime.t;
  core : Core.t;
  analyze : bool;
  registry : (int, Aobject.any) Hashtbl.t;  (* live objects, by address *)
  tombstones : (int, string) Hashtbl.t;
      (* destroyed objects (addr -> name), awaiting the finalize sweep
         that checks nothing still claims a usable copy of them *)
  mutable inflight_moves : int;
  mutable pending_audit : Aobject.any list;
  mutable violations : Audit.violation list;
  violation_keys : (int * int * string, unit) Hashtbl.t;
}

let add_violations t vs =
  List.iter
    (fun (v : Audit.violation) ->
      let key = (v.Audit.addr, v.Audit.node, v.Audit.problem) in
      if not (Hashtbl.mem t.violation_keys key) then begin
        Hashtbl.replace t.violation_keys key ();
        t.violations <- v :: t.violations;
        Runtime.notify_failure t.rt ~kind:"san" ~node:v.Audit.node
          ~detail:(Format.asprintf "%a" Audit.pp_violation v)
      end)
    vs

(* Audit is only sound at move quiescence: mid-move an object legally has
   no resident node yet (contents in flight), so run the deferred checks
   when the in-flight counter returns to zero. *)
let audit_pending t =
  if t.pending_audit <> [] && t.inflight_moves = 0 then begin
    add_violations t (Audit.check_objects t.rt t.pending_audit);
    t.pending_audit <- []
  end

let report t =
  {
    (Core.report ~violations:(List.rev t.violations) t.core) with
    objects_tracked = Hashtbl.length t.registry;
  }

let summary_lines t () =
  let r = report t in
  let line fmt = Format.asprintf fmt in
  let header =
    line "%d events analyzed, %d threads, %d objects tracked" r.events
      r.threads r.objects_tracked
  in
  if clean r then [ header; "no findings" ]
  else
    header
    :: (List.map (line "%a" pp_race) r.races
       @ List.map (line "%a" pp_cycle) r.cycles
       @ List.map (line "coherence: %a" Audit.pp_violation) r.violations)

let attach ?(analyze = true) rt =
  let t =
    {
      rt;
      core = Core.create ();
      analyze;
      registry = Hashtbl.create 64;
      tombstones = Hashtbl.create 8;
      inflight_moves = 0;
      pending_audit = [];
      violations = [];
      violation_keys = Hashtbl.create 16;
    }
  in
  let ev e =
    Sim.Trace.emit (Runtime.trace rt) ~time:(Runtime.now rt) ~category:"san"
      ~detail:(lazy (Event.to_string e)) ();
    if t.analyze then begin
      (* A new race is a typed failure like any crash: let subscribers
         (the flight recorder) capture the window around it. *)
      let races_before = List.length t.core.Core.races in
      Core.feed t.core e;
      if List.length t.core.Core.races > races_before then
        match t.core.Core.races with
        | r :: _ ->
          Runtime.notify_failure rt ~kind:"san" ~node:(-1)
            ~detail:(Format.asprintf "%a" pp_race r)
        | [] -> ()
    end
  in
  let tid () = Hw.Machine.tcb_id (Hw.Machine.self_exn ()) in
  let hooks =
    {
      San_hooks.on_thread_start =
        (fun ~parent ~child ->
          let p =
            match parent with Some p -> Hw.Machine.tcb_id p | None -> -1
          in
          ev
            (Event.Thread_start { parent = p; child = Hw.Machine.tcb_id child }));
      on_thread_join =
        (fun ~child ->
          ev
            (Event.Thread_join
               { parent = tid (); child = Hw.Machine.tcb_id child }));
      on_migrate =
        (fun ~tcb ~src ~dst ->
          ev (Event.Migrate { tid = Hw.Machine.tcb_id tcb; src; dst }));
      on_object_created =
        (fun (Aobject.Any o as any) ->
          Hashtbl.replace t.registry o.Aobject.addr any;
          (* Heap addresses can be recycled; a re-created address is no
             longer a deletion to audit. *)
          Hashtbl.remove t.tombstones o.Aobject.addr;
          ev
            (Event.Object_created
               { addr = o.Aobject.addr; name = o.Aobject.name }));
      on_object_destroyed =
        (fun ~addr ->
          (match Hashtbl.find_opt t.registry addr with
          | Some (Aobject.Any o) ->
            Hashtbl.replace t.tombstones addr o.Aobject.name
          | None ->
            Hashtbl.replace t.tombstones addr (Printf.sprintf "0x%x" addr));
          Hashtbl.remove t.registry addr;
          ev (Event.Object_destroyed { addr }));
      on_sync_created =
        (fun ~addr ~kind -> ev (Event.Sync_created { addr; kind }));
      on_access =
        (fun (Aobject.Any o) mode ->
          (* A sync object's own state is protocol-internal: every probe of
             a contended spinlock would otherwise look like an access. *)
          if not (Core.is_sync t.core o.Aobject.addr) then
            ev (Event.Access { tid = tid (); addr = o.Aobject.addr; mode }));
      on_access_end =
        (fun (Aobject.Any o) ->
          if not (Core.is_sync t.core o.Aobject.addr) then
            ev (Event.Access_end { tid = tid (); addr = o.Aobject.addr }));
      on_lock_acquired =
        (fun ~addr ~name:_ -> ev (Event.Lock_acquired { tid = tid (); addr }));
      on_lock_released =
        (fun ~addr -> ev (Event.Lock_released { tid = tid (); addr }));
      on_barrier_arrive =
        (fun ~addr ~gen ->
          ev
            (Event.Barrier
               { tid = tid (); addr; gen; phase = Event.Arrive }));
      on_barrier_release =
        (fun ~addr ~gen ->
          ev
            (Event.Barrier
               { tid = tid (); addr; gen; phase = Event.Release }));
      on_barrier_resume =
        (fun ~addr ~gen ->
          ev
            (Event.Barrier
               { tid = tid (); addr; gen; phase = Event.Resume }));
      on_cond_signal =
        (fun ~token -> ev (Event.Cond_signal { tid = tid (); token }));
      on_cond_wake =
        (fun ~token -> ev (Event.Cond_wake { tid = tid (); token }));
      on_move_begin =
        (fun ~addr:_ -> t.inflight_moves <- t.inflight_moves + 1);
      on_move_end =
        (fun any ->
          t.inflight_moves <- t.inflight_moves - 1;
          t.pending_audit <- any :: t.pending_audit;
          if t.analyze then audit_pending t);
      on_replica_read =
        (fun (Aobject.Any o) ~node ~epoch ->
          ev
            (Event.Replica_read
               { tid = tid (); addr = o.Aobject.addr; node; epoch });
          if t.analyze then begin
            (* Ground truth: a correct protocol only serves snapshots on
               currently granted nodes, at the object's current epoch.  A
               mismatch means an invalidation was lost or unacknowledged
               and a completed write is invisible here — a stale read. *)
            let mk problem =
              {
                Audit.addr = o.Aobject.addr;
                name = o.Aobject.name;
                node;
                problem;
              }
            in
            if not (List.mem node o.Aobject.replicas) then
              add_violations t
                [ mk "read served from a recalled replica" ]
            else if epoch <> o.Aobject.epoch then
              add_violations t
                [
                  mk
                    (Printf.sprintf
                       "stale replica read (snapshot epoch %d, object at %d)"
                       epoch o.Aobject.epoch);
                ]
          end);
      on_steal =
        (fun ~tcb ~victim ~thief ->
          (* Fires from the steal handler: a server fiber when the request
             arrived by RPC, no fiber at all for directed test calls. *)
          let by =
            match Hw.Machine.self () with
            | Some me -> Hw.Machine.tcb_id me
            | None -> -1
          in
          ev
            (Event.Steal { by; tid = Hw.Machine.tcb_id tcb; victim; thief }));
      on_future_resolve =
        (fun ~id -> ev (Event.Future_resolve { tid = tid (); id }));
      on_future_await =
        (fun ~id -> ev (Event.Future_await { tid = tid (); id }));
    }
  in
  Runtime.set_sanitizer rt hooks;
  Runtime.add_report_section rt ~name:"sanitizer" (summary_lines t);
  t

let finalize t =
  if t.analyze then begin
    t.inflight_moves <- 0;
    audit_pending t;
    add_violations t
      (Audit.check_objects t.rt
         (Hashtbl.fold (fun _ any acc -> any :: acc) t.registry []));
    (* Deleted objects: nothing may still claim a usable copy of them. *)
    Hashtbl.iter
      (fun addr name ->
        if not (Hashtbl.mem t.registry addr) then
          add_violations t (Audit.check_deleted t.rt ~addr ~name))
      t.tombstones
  end;
  report t

(* ------------------------------------------------------------------ *)
(* Offline lint                                                        *)
(* ------------------------------------------------------------------ *)

let lint_events events =
  let core = Core.create () in
  List.iter (Core.feed core) events;
  Core.report core

let lint_trace records =
  lint_events
    (List.filter_map
       (fun (r : Sim.Trace.record) ->
         if String.equal r.Sim.Trace.category "san" then
           Event.of_string r.Sim.Trace.detail
         else None)
       records)
