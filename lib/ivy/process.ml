module Runtime = Amber.Runtime

type 'r t = {
  tcb : Hw.Machine.tcb;
  result : 'r option ref;
}

let spawn rt ~node ?(name = "ivy-proc") body =
  let result = ref None in
  let tcb =
    Topaz.Task.spawn (Runtime.task rt node) ~name (fun () ->
        result := Some (body ()))
  in
  { tcb; result }

let join t =
  match Topaz.Kthread.join t.tcb with
  | Sim.Fiber.Completed -> (
    match !(t.result) with
    | Some r -> r
    | None -> failwith "Process.join: no result")
  | Sim.Fiber.Failed e -> raise e

(* Default process context: registers + kernel state + working-set pages
   pushed with the process (Ivy moved processes wholesale). *)
let default_state_bytes = 4096

let migrate rt ?(state_bytes = default_state_bytes) ~dest () =
  let machine = Hw.Machine.self_machine () in
  let src = Hw.Machine.id machine in
  if src <> dest then begin
    let tcb = Hw.Machine.self_exn () in
    let c = Runtime.cost rt in
    Sim.Fiber.consume c.Amber.Cost_model.thread_send_cpu;
    Sim.Fiber.block (fun wake ->
        (* Reliable: a dropped process-state flight would strand it. *)
        Topaz.Rpc.send_reliable (Runtime.rpc rt) ~src ~dst:dest
          ~size:state_bytes ~kind:"process" (fun () ->
            Hw.Machine.transfer tcb ~dest:(Runtime.machine rt dest);
            wake ()));
    Sim.Fiber.consume c.Amber.Cost_model.thread_recv_cpu
  end

let node t = Hw.Machine.id (Hw.Machine.home t.tcb)

let is_finished t =
  match Hw.Machine.state t.tcb with
  | Hw.Machine.Finished _ -> true
  | Hw.Machine.Ready | Hw.Machine.Running _ | Hw.Machine.Blocked -> false
