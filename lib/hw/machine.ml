let src = Logs.Src.create "hw.machine" ~doc:"multiprocessor node model"

module Log = (val Logs.src_log src : Logs.LOG)

type thread_state =
  | Ready
  | Running of int
  | Blocked
  | Finished of Sim.Fiber.outcome

type tcb = {
  tid : int;
  name : string;
  mutable machine : t;
  mutable tstate : thread_state;
  (* Continuation to run when next placed on a CPU.  [None] while the fiber
     is actively being stepped or after it finishes. *)
  mutable step : (unit -> Sim.Fiber.paused) option;
  (* CPU seconds still owed from a Consume that was interrupted by
     preemption or quantum expiry. *)
  mutable pending_consume : float;
  mutable prio : int;
  mutable on_resume : (tcb -> bool) option;
  mutable finish_callbacks : (Sim.Fiber.outcome -> unit) list;
  mutable cpu_seconds : float;
  mutable dispatches : int;
  (* Terminated by crash injection ({!kill}) rather than by its own
     fiber.  A stale waker aimed at a killed thread — a lock release, a
     late reply, an in-flight thread-state packet — becomes a no-op
     instead of an [Invalid_argument]: the rest of the cluster cannot
     know the thread died before poking it. *)
  mutable killed : bool;
}

and cpu = {
  index : int;
  mutable cstate : cpu_state;
  mutable busy_seconds : float;
  mutable quantum_left : float;
}

and cpu_state = Idle | Busy of busy

and busy = {
  btcb : tcb;
  mutable chunk_event : Sim.Engine.event_id;
  mutable chunk_started : float;
  mutable chunk : float;
  (* CPU demand remaining after the current chunk completes. *)
  mutable remaining : float;
}

and t = {
  mid : int;
  eng : Sim.Engine.t;
  cpus : cpu array;
  mutable pol : tcb Sched_policy.t;
  ctx_switch : float;
  quantum : float;
  preempt_cost : float;
  trace : Sim.Trace.t;
  mutable dispatch_pending : bool;
  mutable dispatches_total : int;
  mutable preemptions : int;
  mutable failed : (tcb * exn) list;
  (* [false] while the node is crashed: no CPU dispatches happen, so every
     fiber homed here is frozen in place until {!set_up} (restart) or
     {!kill} (fail-stop). *)
  mutable up : bool;
}

let tid_counter = ref 0

(* Restart thread-id assignment for a fresh cluster.  Tids are embedded in
   span traces and exports; without the reset they would depend on how
   many clusters the hosting process ran before this one. *)
let reset_tids () = tid_counter := 0

(* The thread whose fiber is executing right now.  The simulator is
   single-threaded and fibers run to their next pause within one event, so
   a single slot suffices. *)
let current : tcb option ref = ref None

let epsilon = 1e-12

let create ~engine ~id ~cpus ?(ctx_switch = 0.0) ?(quantum = 0.1)
    ?(preempt_cost = 0.0) ?policy ?(trace = Sim.Trace.create ()) () =
  if cpus <= 0 then invalid_arg "Machine.create: cpus must be positive";
  if quantum <= 0.0 then invalid_arg "Machine.create: quantum must be positive";
  let pol = match policy with Some p -> p | None -> Sched_policy.fifo () in
  {
    mid = id;
    eng = engine;
    cpus =
      Array.init cpus (fun index ->
          { index; cstate = Idle; busy_seconds = 0.0; quantum_left = quantum });
    pol;
    ctx_switch;
    quantum;
    preempt_cost;
    trace;
    dispatch_pending = false;
    dispatches_total = 0;
    preemptions = 0;
    failed = [];
    up = true;
  }

let id m = m.mid
let engine m = m.eng
let cpu_count m = Array.length m.cpus
let policy_name m = m.pol.Sched_policy.name

let set_policy m new_pol =
  let rec drain () =
    match m.pol.Sched_policy.dequeue () with
    | None -> ()
    | Some tcb ->
      new_pol.Sched_policy.enqueue tcb;
      drain ()
  in
  drain ();
  m.pol <- new_pol

let tcb_id t = t.tid
let tcb_name t = t.name
let state t = t.tstate
let home t = t.machine
let set_priority t p = t.prio <- p
let priority t = t.prio
let set_on_resume t hook = t.on_resume <- hook
let cpu_time t = t.cpu_seconds

let add_pending_work t dt =
  if dt < 0.0 || Float.is_nan dt then
    invalid_arg "Machine.add_pending_work: bad duration";
  t.pending_consume <- t.pending_consume +. dt

let on_finish t cb =
  match t.tstate with
  | Finished outcome -> cb outcome
  | Ready | Running _ | Blocked -> t.finish_callbacks <- cb :: t.finish_callbacks

let self () = !current

let self_exn () =
  match !current with
  | Some t -> t
  | None -> failwith "Machine.self_exn: not inside a fiber"

let self_machine () = (self_exn ()).machine

let trace m category detail =
  Sim.Trace.emit m.trace ~time:(Sim.Engine.now m.eng) ~category ~detail ()

(* --- dispatching ------------------------------------------------------- *)

let rec schedule_dispatch m =
  if m.up && not m.dispatch_pending then begin
    m.dispatch_pending <- true;
    let thunk () =
      m.dispatch_pending <- false;
      dispatch m
    in
    ignore
      ((if Sim.Engine.chooser_active m.eng then
          Sim.Engine.schedule m.eng
            ~key:(Printf.sprintf "node:%d" m.mid)
            ~label:(Printf.sprintf "dispatch node%d" m.mid)
            ~delay:0.0 thunk
        else Sim.Engine.schedule m.eng ~delay:0.0 thunk)
        : Sim.Engine.event_id)
  end

and dispatch m =
  if not m.up then ()
  else begin
  let idle = Array.to_list m.cpus |> List.filter (fun c -> c.cstate = Idle) in
  let rec fill = function
    | [] -> ()
    | cpu :: rest ->
      (* Nested dispatches (from a pause handled during [run_on]) may have
         claimed this CPU already. *)
      if cpu.cstate = Idle then begin
        match next_runnable m with
        | None -> ()
        | Some tcb ->
          run_on m cpu tcb;
          fill rest
      end
      else fill rest
  in
  fill idle
  end

(* Under a chooser, which ready thread runs next is a decision point:
   drain the policy, put the question to the chooser, and re-enqueue with
   the chosen thread at the front (relative order of the rest is
   preserved, so declining to reorder reproduces the policy's own
   answer). *)
and choose_ready (c : Sim.Choice.t) m =
  let rec drain acc =
    match m.pol.Sched_policy.dequeue () with
    | None -> List.rev acc
    | Some tcb -> drain (tcb :: acc)
  in
  let ready = Array.of_list (drain []) in
  let cands =
    Array.map
      (fun tcb ->
        Sim.Choice.candidate
          ~key:(Printf.sprintf "node:%d" m.mid)
          ~label:(Printf.sprintf "run %s t%d node%d" tcb.name tcb.tid m.mid)
          ~dom:Sim.Choice.Fiber
          ~ident:(Printf.sprintf "t%d" tcb.tid)
          ())
      ready
  in
  let idx = c.Sim.Choice.pick Sim.Choice.Fiber cands in
  m.pol.Sched_policy.enqueue ready.(idx);
  Array.iteri (fun i tcb -> if i <> idx then m.pol.Sched_policy.enqueue tcb) ready

(* Pop ready threads, running each one's on_resume hook; a hook that
   returns false has taken the thread over (e.g. to migrate it), so keep
   looking. *)
and next_runnable m =
  (match Sim.Engine.chooser m.eng with
  | Some c when m.pol.Sched_policy.length () > 1 -> choose_ready c m
  | Some _ | None -> ());
  match m.pol.Sched_policy.dequeue () with
  | None -> None
  | Some tcb -> (
    match tcb.on_resume with
    | None -> Some tcb
    | Some hook ->
      if hook tcb then Some tcb
      else begin
        (* The hook must have parked the thread elsewhere. *)
        (match tcb.tstate with
        | Ready ->
          invalid_arg
            "Machine: on_resume hook returned false but left thread Ready"
        | Running _ | Blocked | Finished _ -> ());
        next_runnable m
      end)

and run_on m cpu tcb =
  tcb.tstate <- Running cpu.index;
  tcb.dispatches <- tcb.dispatches + 1;
  m.dispatches_total <- m.dispatches_total + 1;
  cpu.quantum_left <- m.quantum;
  trace m "sched"
    (lazy (Printf.sprintf "node%d cpu%d runs %s" m.mid cpu.index tcb.name));
  (* The context-switch cost plus any leftover consume is charged before
     the fiber itself resumes. *)
  let owed = m.ctx_switch +. tcb.pending_consume in
  tcb.pending_consume <- 0.0;
  if owed > epsilon then start_chunk m cpu tcb ~remaining:owed
  else resume_fiber m cpu tcb

and resume_fiber m cpu tcb =
  match tcb.step with
  | None ->
    (* A finished or already-running thread must never reach a CPU. *)
    invalid_arg "Machine: thread has no continuation"
  | Some step ->
    tcb.step <- None;
    let saved = !current in
    current := Some tcb;
    let paused = step () in
    current := saved;
    handle_pause m cpu tcb paused

and handle_pause m cpu tcb (paused : Sim.Fiber.paused) =
  match paused with
  | Sim.Fiber.Done outcome -> finish m cpu tcb outcome
  | Sim.Fiber.Consumed (dt, r) ->
    tcb.step <- Some r.Sim.Fiber.resume;
    start_chunk m cpu tcb ~remaining:dt
  | Sim.Fiber.Blocked (register, r) ->
    tcb.step <- Some r.Sim.Fiber.resume;
    tcb.tstate <- Blocked;
    release m cpu;
    (* Register after marking Blocked so a synchronous wake works. *)
    register (waker tcb);
    dispatch m
  | Sim.Fiber.Yielded r ->
    tcb.step <- Some r.Sim.Fiber.resume;
    tcb.tstate <- Ready;
    tcb.machine.pol.Sched_policy.enqueue tcb;
    release m cpu;
    dispatch m

and start_chunk m cpu tcb ~remaining =
  let chunk = Float.min remaining cpu.quantum_left in
  let chunk = Float.max chunk epsilon in
  let busy =
    {
      btcb = tcb;
      chunk_event = Sim.Engine.schedule m.eng ~delay:chunk (fun () -> ());
      chunk_started = Sim.Engine.now m.eng;
      chunk;
      remaining = remaining -. chunk;
    }
  in
  (* Replace the placeholder event with one that can see [busy]. *)
  Sim.Engine.cancel m.eng busy.chunk_event;
  let thunk () = chunk_done m cpu busy in
  busy.chunk_event <-
    (if Sim.Engine.chooser_active m.eng then
       Sim.Engine.schedule m.eng
         ~key:(Printf.sprintf "node:%d" m.mid)
         ~label:(Printf.sprintf "chunk %s t%d node%d" tcb.name tcb.tid m.mid)
         ~delay:chunk thunk
     else Sim.Engine.schedule m.eng ~delay:chunk thunk);
  cpu.cstate <- Busy busy

and chunk_done m cpu busy =
  let tcb = busy.btcb in
  credit cpu tcb busy.chunk;
  cpu.quantum_left <- cpu.quantum_left -. busy.chunk;
  if busy.remaining > epsilon then
    if cpu.quantum_left > epsilon then
      start_chunk m cpu tcb ~remaining:busy.remaining
    else if m.pol.Sched_policy.length () > 0 then
      preempt_to_queue m cpu tcb ~owed:busy.remaining
    else begin
      cpu.quantum_left <- m.quantum;
      start_chunk m cpu tcb ~remaining:busy.remaining
    end
  else if cpu.quantum_left <= epsilon && m.pol.Sched_policy.length () > 0 then
    (* Quantum boundary between consume requests: timeslice ends here. *)
    preempt_to_queue m cpu tcb ~owed:0.0
  else resume_fiber m cpu tcb

and preempt_to_queue m cpu tcb ~owed =
  m.preemptions <- m.preemptions + 1;
  tcb.pending_consume <- owed;
  tcb.tstate <- Ready;
  tcb.machine.pol.Sched_policy.enqueue tcb;
  release m cpu;
  dispatch m

and credit cpu tcb seconds =
  cpu.busy_seconds <- cpu.busy_seconds +. seconds;
  tcb.cpu_seconds <- tcb.cpu_seconds +. seconds

and release m cpu =
  ignore m;
  cpu.cstate <- Idle

and finish m cpu tcb outcome =
  tcb.tstate <- Finished outcome;
  tcb.step <- None;
  (match outcome with
  | Sim.Fiber.Failed e ->
    m.failed <- (tcb, e) :: m.failed;
    Log.err (fun f ->
        f "thread %s failed: %s" tcb.name (Printexc.to_string e))
  | Sim.Fiber.Completed -> ());
  let callbacks = List.rev tcb.finish_callbacks in
  tcb.finish_callbacks <- [];
  release m cpu;
  List.iter (fun cb -> cb outcome) callbacks;
  dispatch m

and waker tcb =
  let fired = ref false in
  fun () ->
    if not !fired then begin
      fired := true;
      match tcb.tstate with
      | Blocked ->
        tcb.tstate <- Ready;
        tcb.machine.pol.Sched_policy.enqueue tcb;
        schedule_dispatch tcb.machine
      | Ready | Running _ | Finished _ -> ()
    end

(* --- public operations -------------------------------------------------- *)

let spawn m ~name ?(priority = 0) body =
  incr tid_counter;
  let tcb =
    {
      tid = !tid_counter;
      name;
      machine = m;
      tstate = Ready;
      step = Some (fun () -> Sim.Fiber.start body);
      pending_consume = 0.0;
      prio = priority;
      on_resume = None;
      finish_callbacks = [];
      cpu_seconds = 0.0;
      dispatches = 0;
      killed = false;
    }
  in
  m.pol.Sched_policy.enqueue tcb;
  schedule_dispatch m;
  tcb

let wake tcb =
  match tcb.tstate with
  | Blocked ->
    tcb.tstate <- Ready;
    tcb.machine.pol.Sched_policy.enqueue tcb;
    schedule_dispatch tcb.machine
  | Finished _ when tcb.killed ->
    (* A waker aimed at a crash-killed thread (lock release, late reply,
       join notify) fires into the void. *)
    ()
  | Ready | Running _ | Finished _ ->
    invalid_arg "Machine.wake: thread is not blocked"

let preempt_all ?except m =
  let count = ref 0 in
  Array.iter
    (fun cpu ->
      match cpu.cstate with
      | Idle -> ()
      | Busy busy ->
        let skip =
          match except with Some e -> e == busy.btcb | None -> false
        in
        if not skip then begin
          incr count;
          m.preemptions <- m.preemptions + 1;
          Sim.Engine.cancel m.eng busy.chunk_event;
          let elapsed = Sim.Engine.now m.eng -. busy.chunk_started in
          let elapsed = Float.max 0.0 (Float.min elapsed busy.chunk) in
          credit cpu busy.btcb elapsed;
          let owed = (busy.chunk -. elapsed) +. busy.remaining in
          (* The victim pays for the interrupt that descheduled it. *)
          busy.btcb.pending_consume <- owed +. m.preempt_cost;
          busy.btcb.tstate <- Ready;
          busy.btcb.machine.pol.Sched_policy.enqueue busy.btcb;
          cpu.cstate <- Idle
        end)
    m.cpus;
  if !count > 0 then schedule_dispatch m;
  !count

(* --- node crash / restart ----------------------------------------------- *)

(* Crash: deschedule everything (chunk events cancelled, victims queued
   Ready with the work they still owe) and stop dispatching.  Fibers are
   frozen in place, not destroyed: {!set_up} resumes them where they
   stopped, {!kill} fails them for good. *)
let set_down m =
  if m.up then begin
    m.up <- false;
    ignore (preempt_all m : int);
    trace m "crash" (lazy (Printf.sprintf "node%d down" m.mid))
  end

let set_up m =
  if not m.up then begin
    m.up <- true;
    trace m "crash" (lazy (Printf.sprintf "node%d up" m.mid));
    schedule_dispatch m
  end

let is_up m = m.up

let park tcb =
  match tcb.tstate with
  | Ready -> tcb.tstate <- Blocked
  | Running _ | Blocked | Finished _ ->
    invalid_arg "Machine.park: thread is not ready"

let transfer tcb ~dest =
  (match tcb.tstate with
  | Blocked -> ()
  | Ready | Running _ | Finished _ ->
    invalid_arg "Machine.transfer: thread must be blocked");
  tcb.machine <- dest

let ready_length m = m.pol.Sched_policy.length ()

let running_tcbs m =
  Array.to_list m.cpus
  |> List.filter_map (fun c ->
         match c.cstate with Idle -> None | Busy b -> Some b.btcb)

let busy_cpus m =
  Array.fold_left
    (fun acc c -> match c.cstate with Idle -> acc | Busy _ -> acc + 1)
    0 m.cpus

let current_load m = ready_length m + busy_cpus m

let take_ready m pred =
  let found = ref None in
  (* [remove] strips every matching entry, so the predicate must stop
     matching after the first hit. *)
  let one_shot tcb =
    match !found with
    | Some _ -> false
    | None ->
      if pred tcb then begin
        found := Some tcb;
        true
      end
      else false
  in
  ignore (m.pol.Sched_policy.remove one_shot : int);
  !found

(* Fail-stop termination: finish [tcb] with [Failed e] {e without}
   recording a machine failure — the failure is injected by the crash
   plan, not a bug in the thread's code, so it must not poison
   [failures]/[check_failures].  The pending chunk is cancelled, the
   ready-queue entry removed, and finish callbacks (joiners, future
   publishers) run immediately with the failed outcome. *)
let kill tcb e =
  match tcb.tstate with
  | Finished _ -> ()
  | st ->
    let m = tcb.machine in
    (match st with
    | Running _ ->
      Array.iter
        (fun cpu ->
          match cpu.cstate with
          | Busy busy when busy.btcb == tcb ->
            Sim.Engine.cancel m.eng busy.chunk_event;
            cpu.cstate <- Idle
          | Busy _ | Idle -> ())
        m.cpus
    | Ready -> ignore (take_ready m (fun t -> t == tcb) : tcb option)
    | Blocked -> ()
    | Finished _ -> assert false);
    tcb.killed <- true;
    tcb.tstate <- Finished (Sim.Fiber.Failed e);
    tcb.step <- None;
    tcb.pending_consume <- 0.0;
    let callbacks = List.rev tcb.finish_callbacks in
    tcb.finish_callbacks <- [];
    List.iter (fun cb -> cb (Sim.Fiber.Failed e)) callbacks

let was_killed tcb = tcb.killed

let total_busy_time m =
  Array.fold_left (fun acc c -> acc +. c.busy_seconds) 0.0 m.cpus

let dispatch_count m = m.dispatches_total
let preemption_count m = m.preemptions
let failures m = m.failed

let forget_failures tcb =
  let m = tcb.machine in
  m.failed <- List.filter (fun (t, _) -> not (t == tcb)) m.failed

let pp_tcb ppf t =
  let state_str =
    match t.tstate with
    | Ready -> "ready"
    | Running i -> Printf.sprintf "running@cpu%d" i
    | Blocked -> "blocked"
    | Finished (Sim.Fiber.Completed) -> "done"
    | Finished (Sim.Fiber.Failed _) -> "failed"
  in
  Format.fprintf ppf "#%d:%s[%s on node%d]" t.tid t.name state_str
    t.machine.mid
