(** Model of one shared-memory multiprocessor node (a "Firefly").

    A machine has [cpus] identical processors sharing a single ready queue
    managed by a replaceable {!Sched_policy.t}.  Simulated threads (TCBs)
    run on the CPUs with preemptive timeslicing: a thread's
    [Sim.Fiber.consume] requests are sliced into quantum-bounded chunks,
    and a thread whose quantum expires while other threads are waiting is
    requeued.

    The model exposes exactly the mechanisms the Amber runtime needs:

    - an [on_resume] hook per thread, called each time the thread is about
      to be placed on a CPU — this is where Amber performs its
      context-switch-in residency check (paper §3.5);
    - {!preempt_all}, used by object moves to force every running thread
      through that check;
    - {!transfer}, which re-homes a blocked thread onto another machine
      (the mechanical half of thread migration). *)

type t
type tcb

type thread_state =
  | Ready
  | Running of int  (** CPU index *)
  | Blocked
  | Finished of Sim.Fiber.outcome

(** {1 Construction} *)

val create :
  engine:Sim.Engine.t ->
  id:int ->
  cpus:int ->
  ?ctx_switch:float ->
  (* seconds charged each time a thread is placed on a CPU *)
  ?quantum:float ->
  ?preempt_cost:float ->
  (* seconds charged to a thread forcibly descheduled by {!preempt_all} *)
  ?policy:tcb Sched_policy.t ->
  ?trace:Sim.Trace.t ->
  unit ->
  t

val id : t -> int
val engine : t -> Sim.Engine.t
val cpu_count : t -> int

(** Replace the scheduling discipline at runtime (Amber §2.1).  Threads
    already queued are drained into the new policy in dequeue order. *)
val set_policy : t -> tcb Sched_policy.t -> unit

val policy_name : t -> string

(** {1 Threads} *)

(** Create a thread running [body] and make it runnable on this machine.
    [priority] is in effect from the first enqueue (priority policies
    sample it then). *)
val spawn : t -> name:string -> ?priority:int -> (unit -> unit) -> tcb

val tcb_id : tcb -> int

val reset_tids : unit -> unit
(** Restart thread-id assignment at 1.  Call when bringing up a fresh
    cluster so tids — which appear in span traces and exports — are a
    deterministic function of the run, not of how many clusters the
    hosting process created before it. *)

val tcb_name : tcb -> string
val state : tcb -> thread_state
val home : tcb -> t

(** Machine the thread is currently assigned to. *)

val set_priority : tcb -> int -> unit
val priority : tcb -> int

(** Hook run just before the thread is placed on a CPU.  Return [true] to
    proceed; return [false] if the hook has taken the thread over (it must
    then have left the thread [Blocked] or re-enqueued elsewhere). *)
val set_on_resume : tcb -> (tcb -> bool) option -> unit

(** Register a callback for thread termination (fires for both normal
    completion and failure; immediately if already finished). *)
val on_finish : tcb -> (Sim.Fiber.outcome -> unit) -> unit

(** Total CPU seconds charged to this thread so far. *)
val cpu_time : tcb -> float

(** Add CPU work the thread must burn before it next resumes (e.g. kernel
    work performed on its behalf while it was descheduled, such as
    unmarshalling its migrated state). *)
val add_pending_work : tcb -> float -> unit

(** {1 Scheduler operations (called from outside fibers)} *)

(** Make a [Blocked] thread runnable on its current machine.  Raises
    [Invalid_argument] if the thread is not blocked. *)
val wake : tcb -> unit

(** Forcibly deschedule every thread currently running on a CPU of this
    machine, except [except] if given.  Each victim is charged
    [preempt_cost] and re-enqueued; its remaining CPU demand is preserved.
    Returns the number of threads preempted. *)
val preempt_all : ?except:tcb -> t -> int

(** Take over a thread that was just handed to an [on_resume] hook (state
    [Ready], already dequeued): mark it [Blocked] so it can be
    {!transfer}red and later woken.  Only valid from inside such a hook.
    Raises [Invalid_argument] otherwise. *)
val park : tcb -> unit

(** Re-home a thread that is currently [Blocked] onto [dest].  The caller
    is responsible for the timing of the subsequent {!wake}.  Raises
    [Invalid_argument] if the thread is running or ready. *)
val transfer : tcb -> dest:t -> unit

(** Remove and return the first queued [Ready] thread matching the
    predicate, or [None].  The thread is left [Ready] and dequeued — the
    caller must either re-enqueue it or {!park} it (a work stealer parks
    it, then {!transfer}s and {!wake}s it at the thief). *)
val take_ready : t -> (tcb -> bool) -> tcb option

(** The thread (if any) whose fiber is executing right now.  Valid only
    while the simulation is inside a fiber step. *)
val self : unit -> tcb option

(** Machine of the currently executing thread.  Raises [Failure] outside a
    fiber. *)
val self_machine : unit -> t

(** [self_exn ()] = current tcb or [Failure]. *)
val self_exn : unit -> tcb

(** {1 Introspection} *)

val ready_length : t -> int
val running_tcbs : t -> tcb list
val busy_cpus : t -> int

(** Instantaneous load: ready-queue length plus occupied CPUs.  This is
    the metric load-balancing policies rank nodes by (cumulative busy
    time says where work {e was}, not where it is). *)
val current_load : t -> int

(** {1 Crash injection}

    A crashed ("down") machine freezes: no dispatches happen, running
    fibers are descheduled, and queued threads stay queued until the
    machine is brought back {!set_up} — a transient outage loses no
    thread state.  Fail-stop crashes additionally {!kill} each thread. *)

(** Take the machine down: deschedule every running thread and stop all
    dispatching.  Idempotent. *)
val set_down : t -> unit

(** Bring a downed machine back: dispatching resumes with the thread
    population exactly as it was at {!set_down}.  Idempotent. *)
val set_up : t -> unit

val is_up : t -> bool

(** Forcibly terminate a thread with [Failed e], from any state: a running
    thread's CPU chunk is cancelled, a ready thread is dequeued, a blocked
    thread is simply marked finished (its waker becomes a no-op).  The
    thread's [on_finish] callbacks run.  Unlike an organic failure the
    kill is {e not} recorded in {!failures} — an injected crash must not
    trip the cluster-wide failure check.  No-op on finished threads. *)
val kill : tcb -> exn -> unit

(** True if the thread was terminated by {!kill}.  For such threads
    {!wake} is a harmless no-op — the rest of the cluster cannot know the
    thread died before poking it. *)
val was_killed : tcb -> bool

(** Sum of busy seconds over all CPUs. *)
val total_busy_time : t -> float

val dispatch_count : t -> int
val preemption_count : t -> int

(** Threads that terminated with [Failed]. *)
val failures : t -> (tcb * exn) list

(** Remove a thread's entries from the failure list — used when a joiner
    has consumed (re-raised) the failure. *)
val forget_failures : tcb -> unit

val pp_tcb : Format.formatter -> tcb -> unit
