(** Shared-medium Ethernet model (the paper's 10 Mbit/s segment).

    All nodes share one transmission medium.  A packet's wire time is

    {v  tx = wire_overhead + 8 * (size + header_bytes) / bandwidth_bps  v}

    and delivery happens [propagation] seconds after its transmission
    completes, at which point the packet's [deliver] callback runs.

    Two media-access models are available:

    - {!Fifo} (default): transmissions serialize in submission order —
      an idealized collision-free bus.  All calibration against the
      paper's Table 1 uses this model.
    - {!Csma_cd}: the real 1989 Ethernet.  A station that finds the
      medium busy defers; stations that attempt simultaneously collide,
      jam, and retry under binary exponential backoff (slot time 51.2 µs).
      Under light load it behaves like FIFO; near saturation it loses
      goodput to collisions — measurable with `bench ablate-mac`.

    Both models capture the two effects the paper's evaluation depends
    on: per-message latency and serialization of concurrent senders. *)

type mac = Fifo | Csma_cd

(** {1 Fault injection}

    A seeded fault model applied between the wire and the receiver: a
    packet always pays its transmission time, then may be {e dropped},
    {e duplicated}, or hit by a {e latency spike} before delivery, and a
    packet arriving at a node inside one of its {e stall windows} is held
    until the window ends.  Decisions are drawn from a dedicated RNG
    stream split off the engine seed, so the fault pattern of a run is a
    pure function of the configuration — two runs with the same seed see
    identical losses.  With [no_faults] (the default) the layer is
    bypassed entirely and behavior is bit-identical to a fault-free
    build. *)

type stall = {
  node : int;  (** receiving node the window applies to *)
  from_t : float;  (** window start, virtual seconds *)
  until_t : float;  (** window end (exclusive) *)
}

type faults = {
  drop_prob : float;  (** per-packet loss probability, [0, 1) *)
  dup_prob : float;  (** per-packet duplicate-delivery probability *)
  delay_prob : float;  (** per-packet latency-spike probability *)
  delay_spike : float;  (** seconds added to delivery on a spike *)
  stalls : stall list;
}

val no_faults : faults

(** True if any fault mechanism is active (the condition under which the
    runtime must run its RPC layer in reliable mode). *)
val faults_enabled : faults -> bool

(** Raises [Invalid_argument] on out-of-range probabilities or
    malformed stall windows. *)
val validate_faults : faults -> unit

type t

val create :
  engine:Sim.Engine.t ->
  ?bandwidth_bps:float ->
  (* default 10e6, the paper's Ethernet *)
  ?propagation:float ->
  (* default 20 us *)
  ?wire_overhead:float ->
  (* per-packet fixed wire time (preamble, inter-frame gap); default 50 us *)
  ?header_bytes:int ->
  (* default 64: frame header + trailer + minimal protocol headers *)
  ?mac:mac ->
  ?faults:faults ->
  (* default no_faults *)
  ?trace:Sim.Trace.t ->
  unit ->
  t

(** The engine this medium schedules on (used by transport-layer
    retransmission timers). *)
val engine : t -> Sim.Engine.t

(** Submit a packet for transmission.  Returns the predicted delivery time
    under {!Fifo}; under {!Csma_cd} the return value is the earliest
    possible delivery (collisions may delay it further). *)
val send : t -> Packet.t -> float

(** Wire time for a packet of [size] payload bytes on an idle medium,
    excluding propagation. *)
val tx_time : t -> size:int -> float

(** One-way propagation delay (also the extra lag of a fault-injected
    duplicate delivery). *)
val propagation : t -> float

(** Instant at which the medium next becomes free. *)
val busy_until : t -> float

(** {1 Crash injection}

    A crashed node's interface is powered off: any packet whose delivery
    instant finds the destination down is silently discarded — including
    packets already in flight when the node died.  With no crashes
    configured the set stays empty and the check is one hashtable probe
    per delivery. *)

val set_node_down : t -> int -> unit
val set_node_up : t -> int -> unit
val node_is_down : t -> int -> bool

(** {1 Statistics} *)

val packets_sent : t -> int
val bytes_sent : t -> int

(** Total time packets spent queued or backing off before transmitting. *)
val total_queueing : t -> float

(** Seconds the medium has spent transmitting (including jam time). *)
val busy_seconds : t -> float

(** Collision events (always 0 under {!Fifo}). *)
val collisions : t -> int

(** Traffic broken down by packet kind: [(kind, packets, bytes)], sorted
    by kind. *)
val traffic_by_kind : t -> (string * int * int) list

(** {2 Fault-injection statistics} *)

val faults_in_effect : t -> faults
val packets_dropped : t -> int
val packets_duplicated : t -> int
val packets_delayed : t -> int

(** Packets held by a stall window. *)
val packets_stalled : t -> int

(** Packets discarded because their destination node was down at the
    delivery instant. *)
val packets_dropped_dead : t -> int

val reset_stats : t -> unit
