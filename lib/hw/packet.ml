type t = {
  src : int;
  dst : int;
  size : int;
  kind : string;
  seq : int;
  deliver : unit -> unit;
}

let make ?(seq = -1) ~src ~dst ~size ~kind deliver =
  if size < 0 then invalid_arg "Packet.make: negative size";
  { src; dst; size; kind; seq; deliver }

let pp ppf p =
  if p.seq >= 0 then
    Format.fprintf ppf "%s#%d[%d->%d, %dB]" p.kind p.seq p.src p.dst p.size
  else Format.fprintf ppf "%s[%d->%d, %dB]" p.kind p.src p.dst p.size
