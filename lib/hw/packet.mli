(** Network packets.

    A packet carries no simulated bytes — only a size (which determines
    transmission time on the wire) and a [deliver] callback executed at the
    destination when the packet arrives.  The callback typically hands the
    payload to an OS-level handler (e.g. wakes an RPC server thread). *)

type t = {
  src : int;  (** source node id *)
  dst : int;  (** destination node id *)
  size : int;  (** payload bytes (headers are added by the medium) *)
  kind : string;  (** for tracing: "rpc-req", "thread", "obj", "page", … *)
  seq : int;
      (** transport sequence number, or [-1] for unsequenced traffic.
          Retransmissions of the same logical message carry the same
          [seq], which is what receiver-side duplicate suppression keys
          on (and what makes retransmitted packets identifiable in
          traces). *)
  deliver : unit -> unit;
}

val make :
  ?seq:int -> src:int -> dst:int -> size:int -> kind:string ->
  (unit -> unit) -> t

val pp : Format.formatter -> t -> unit
