type mac = Fifo | Csma_cd

(* A node that stops receiving for a window of virtual time (GC pause,
   overload, half-dead interface): packets arriving inside the window
   are held and delivered when it ends. *)
type stall = { node : int; from_t : float; until_t : float }

type faults = {
  drop_prob : float;  (* lose the packet after it crossed the wire *)
  dup_prob : float;  (* deliver the packet twice *)
  delay_prob : float;  (* delivery hit by a latency spike *)
  delay_spike : float;  (* seconds added on a spike *)
  stalls : stall list;
}

let no_faults =
  {
    drop_prob = 0.0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    delay_spike = 0.0;
    stalls = [];
  }

let faults_enabled f =
  f.drop_prob > 0.0 || f.dup_prob > 0.0 || f.delay_prob > 0.0
  || f.stalls <> []

let validate_faults f =
  let prob name p =
    if p < 0.0 || p >= 1.0 || Float.is_nan p then
      invalid_arg (Printf.sprintf "Ethernet faults: %s must be in [0, 1)" name)
  in
  prob "drop_prob" f.drop_prob;
  prob "dup_prob" f.dup_prob;
  prob "delay_prob" f.delay_prob;
  if f.delay_spike < 0.0 || Float.is_nan f.delay_spike then
    invalid_arg "Ethernet faults: delay_spike must be non-negative";
  List.iter
    (fun s ->
      if s.node < 0 then invalid_arg "Ethernet faults: stall node";
      if not (s.until_t > s.from_t) || s.from_t < 0.0 then
        invalid_arg "Ethernet faults: stall window must be ordered")
    f.stalls

(* A packet deferring for the medium under CSMA/CD. *)
type pending = {
  pkt : Packet.t;
  submitted : float;
  mutable attempts : int;
  mutable backoff_until : float;
}

type t = {
  eng : Sim.Engine.t;
  bandwidth_bps : float;
  propagation : float;
  wire_overhead : float;
  header_bytes : int;
  mac : mac;
  rng : Sim.Rng.t;
  faults : faults;
  (* Dedicated stream so fault decisions never perturb CSMA/CD backoff;
     absent when faults are off, so a fault-free run draws exactly the
     same random numbers as a build without this layer. *)
  frng : Sim.Rng.t option;
  trace : Sim.Trace.t;
  mutable free_at : float;
  (* CSMA/CD state *)
  mutable waiting : pending list;
  (* Earliest contention-round event currently scheduled (infinity when
     none).  Extra stale rounds are harmless: they just recompute. *)
  mutable next_round : float;
  (* statistics *)
  mutable packets : int;
  mutable bytes : int;
  mutable queueing : float;
  mutable busy : float;
  mutable collision_count : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable stalled : int;
  mutable dropped_dead : int;
  (* Nodes currently crashed: a packet whose delivery instant finds its
     destination in this set vanishes (the NIC is powered off), covering
     both packets sent to a dead node and packets already in flight when
     the node died.  Empty in every run without crash injection. *)
  downs : (int, unit) Hashtbl.t;
  by_kind : (string, int * int) Hashtbl.t;
}

let slot_time = 51.2e-6
let jam_time = 4.8e-6
let max_backoff_exp = 10

let create ~engine ?(bandwidth_bps = 10e6) ?(propagation = 20e-6)
    ?(wire_overhead = 50e-6) ?(header_bytes = 64) ?(mac = Fifo)
    ?(faults = no_faults) ?(trace = Sim.Trace.create ()) () =
  if bandwidth_bps <= 0.0 then invalid_arg "Ethernet.create: bandwidth";
  validate_faults faults;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  {
    eng = engine;
    bandwidth_bps;
    propagation;
    wire_overhead;
    header_bytes;
    mac;
    rng;
    faults;
    frng = (if faults_enabled faults then Some (Sim.Rng.split rng) else None);
    trace;
    free_at = 0.0;
    waiting = [];
    next_round = Float.infinity;
    packets = 0;
    bytes = 0;
    queueing = 0.0;
    busy = 0.0;
    collision_count = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    stalled = 0;
    dropped_dead = 0;
    downs = Hashtbl.create 4;
    by_kind = Hashtbl.create 16;
  }

let engine t = t.eng
let propagation t = t.propagation

let tx_time t ~size =
  t.wire_overhead
  +. (8.0 *. float_of_int (size + t.header_bytes) /. t.bandwidth_bps)

let busy_until t = t.free_at

let account t (p : Packet.t) ~waited ~tx =
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + p.Packet.size;
  (let n, b =
     Option.value ~default:(0, 0) (Hashtbl.find_opt t.by_kind p.Packet.kind)
   in
   Hashtbl.replace t.by_kind p.Packet.kind (n + 1, b + p.Packet.size));
  t.queueing <- t.queueing +. waited;
  t.busy <- t.busy +. tx

(* Schedule the receiver-side delivery event.  Under a chooser the event
   carries a conflict key (all deliveries into one node touch that node's
   protocol state) and a readable label; in normal operation neither
   string is built. *)
let set_node_down t node = Hashtbl.replace t.downs node ()
let set_node_up t node = Hashtbl.remove t.downs node
let node_is_down t node = Hashtbl.mem t.downs node

let schedule_delivery t (p : Packet.t) ~time =
  (* The down check runs at the delivery instant, not at send time: a
     packet in flight when its destination dies is lost too. *)
  let deliver () =
    if Hashtbl.mem t.downs p.Packet.dst then begin
      t.dropped_dead <- t.dropped_dead + 1;
      Sim.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~category:"crash"
        ~detail:
          (lazy (Format.asprintf "dead-drop %a (node%d down)" Packet.pp p
                   p.Packet.dst))
        ()
    end
    else p.Packet.deliver ()
  in
  if Sim.Engine.chooser_active t.eng then
    ignore
      (Sim.Engine.schedule_at t.eng
         ~key:(Printf.sprintf "net:n%d" p.Packet.dst)
         ~label:
           (Printf.sprintf "deliver %s %d>%d seq%d" p.Packet.kind p.Packet.src
              p.Packet.dst p.Packet.seq)
         ~time deliver
        : Sim.Engine.event_id)
  else
    ignore (Sim.Engine.schedule_at t.eng ~time deliver : Sim.Engine.event_id)

(* Fault injection happens between the wire and the receiver: the packet
   always pays its transmission time (it really crossed the medium), and
   then may be lost, duplicated, or delayed before its [deliver] callback
   is scheduled.  All decisions come from the dedicated seeded stream, so
   a run's fault pattern is a pure function of the configuration seed.

   Under a fault-enabled chooser, the dice are replaced by an explicit
   three-way choice point (deliver / drop / duplicate) on every packet
   that the sender can retransmit (seq >= 0): the checker explores fault
   placements instead of sampling them.  Unnumbered packets are always
   delivered — dropping one loses the message for good, which is the
   transport's documented contract, not a schedule. *)
let inject t (p : Packet.t) ~delivery =
  match Sim.Engine.chooser t.eng with
  | Some c when c.Sim.Choice.faults && p.Packet.seq >= 0 ->
    let key = Printf.sprintf "net:n%d" p.Packet.dst in
    let tag verb =
      Sim.Choice.candidate ~key
        ~label:
          (Printf.sprintf "%s %s %d>%d seq%d" verb p.Packet.kind p.Packet.src
             p.Packet.dst p.Packet.seq)
        ~dom:Sim.Choice.Fault
          (* the ident names this packet's fate, not just the verb:
             sleep sets track transition identity across states, and
             "dup" of one packet is unrelated to "dup" of another *)
        ~ident:
          (Printf.sprintf "%s:%s:%d>%d:%d" verb p.Packet.kind p.Packet.src
             p.Packet.dst p.Packet.seq)
        ()
    in
    let cands = [| tag "deliver"; tag "drop"; tag "dup" |] in
    (match c.Sim.Choice.pick Sim.Choice.Fault cands with
    | 1 -> t.dropped <- t.dropped + 1
    | 2 ->
      t.duplicated <- t.duplicated + 1;
      schedule_delivery t p ~time:delivery;
      schedule_delivery t p ~time:(delivery +. t.propagation)
    | _ -> schedule_delivery t p ~time:delivery)
  | Some _ | None -> (
    match t.frng with
    | None -> schedule_delivery t p ~time:delivery
    | Some rng ->
    let f = t.faults in
    let emit_fault what =
      Sim.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~category:"fault"
        ~detail:(lazy (Format.asprintf "%s %a" what Packet.pp p))
        ()
    in
    let delivery =
      List.fold_left
        (fun d s ->
          if s.node = p.Packet.dst && d >= s.from_t && d < s.until_t then begin
            t.stalled <- t.stalled + 1;
            emit_fault
              (Printf.sprintf "stall(node%d until %.6fs)" s.node s.until_t);
            s.until_t
          end
          else d)
        delivery f.stalls
    in
    if f.drop_prob > 0.0 && Sim.Rng.float rng < f.drop_prob then begin
      t.dropped <- t.dropped + 1;
      emit_fault "drop"
    end
    else begin
      let delivery =
        if f.delay_prob > 0.0 && Sim.Rng.float rng < f.delay_prob then begin
          t.delayed <- t.delayed + 1;
          emit_fault (Printf.sprintf "delay(+%.0fus)" (f.delay_spike *. 1e6));
          delivery +. f.delay_spike
        end
        else delivery
      in
      schedule_delivery t p ~time:delivery;
      if f.dup_prob > 0.0 && Sim.Rng.float rng < f.dup_prob then begin
        t.duplicated <- t.duplicated + 1;
        emit_fault "duplicate";
        schedule_delivery t p ~time:(delivery +. t.propagation)
      end
    end)

(* Begin transmitting [p] at [start] (medium known free then). *)
let transmit t (p : Packet.t) ~submitted ~start =
  let tx = tx_time t ~size:p.Packet.size in
  let done_at = start +. tx in
  t.free_at <- done_at;
  account t p ~waited:(start -. submitted) ~tx;
  let delivery = done_at +. t.propagation in
  Sim.Trace.emit t.trace ~time:start ~category:"net"
    ~detail:
      (lazy
        (Format.asprintf "%a queued=%.0fus tx=%.0fus" Packet.pp p
           ((start -. submitted) *. 1e6)
           (tx *. 1e6)))
    ();
  inject t p ~delivery;
  delivery

(* --- CSMA/CD ------------------------------------------------------------ *)

(* Run one contention round at the current time: the stations whose
   backoff has expired attempt together; one succeeds alone, several
   collide and back off. *)
let rec csma_round t =
  t.next_round <- Float.infinity;
  let now = Sim.Engine.now t.eng in
  if now < t.free_at then schedule_round t t.free_at
  else begin
    let ready, deferred =
      List.partition (fun w -> w.backoff_until <= now +. 1e-12) t.waiting
    in
    match ready with
    | [] ->
      (match deferred with
      | [] -> ()
      | _ ->
        let next =
          List.fold_left
            (fun acc w -> Float.min acc w.backoff_until)
            Float.infinity deferred
        in
        schedule_round t next)
    | [ w ] ->
      t.waiting <- deferred;
      ignore (transmit t w.pkt ~submitted:w.submitted ~start:now : float);
      if deferred <> [] then schedule_round t t.free_at
    | several ->
      (* Collision: everyone jams, then picks a fresh backoff slot. *)
      t.collision_count <- t.collision_count + 1;
      t.busy <- t.busy +. jam_time;
      t.free_at <- now +. jam_time;
      List.iter
        (fun w ->
          w.attempts <- w.attempts + 1;
          let exp = min w.attempts max_backoff_exp in
          let slots = Sim.Rng.int t.rng (1 lsl exp) in
          w.backoff_until <-
            now +. jam_time +. (slot_time *. float_of_int slots))
        several;
      t.waiting <- several @ deferred;
      let next =
        List.fold_left
          (fun acc w -> Float.min acc w.backoff_until)
          Float.infinity t.waiting
      in
      schedule_round t (Float.max next t.free_at)
  end

and schedule_round t time =
  let time = Float.max time (Sim.Engine.now t.eng) in
  if time < t.next_round -. 1e-12 then begin
    t.next_round <- time;
    ignore
      (Sim.Engine.schedule_at t.eng ~time (fun () -> csma_round t)
        : Sim.Engine.event_id)
  end

let send t (p : Packet.t) =
  let now = Sim.Engine.now t.eng in
  match t.mac with
  | Fifo ->
    let start = Float.max now t.free_at in
    t.free_at <- start +. tx_time t ~size:p.Packet.size;
    transmit t p ~submitted:now ~start
  | Csma_cd ->
    let w =
      { pkt = p; submitted = now; attempts = 0; backoff_until = now }
    in
    t.waiting <- t.waiting @ [ w ];
    schedule_round t (Float.max now t.free_at);
    (* Earliest possible delivery, ignoring collisions. *)
    Float.max now t.free_at +. tx_time t ~size:p.Packet.size +. t.propagation

let packets_sent t = t.packets
let bytes_sent t = t.bytes
let total_queueing t = t.queueing
let busy_seconds t = t.busy
let collisions t = t.collision_count
let faults_in_effect t = t.faults
let packets_dropped t = t.dropped
let packets_duplicated t = t.duplicated
let packets_delayed t = t.delayed
let packets_stalled t = t.stalled
let packets_dropped_dead t = t.dropped_dead

let traffic_by_kind t =
  Hashtbl.fold (fun kind (n, b) acc -> (kind, n, b) :: acc) t.by_kind []
  |> List.sort compare

let reset_stats t =
  t.packets <- 0;
  t.bytes <- 0;
  t.queueing <- 0.0;
  t.busy <- 0.0;
  t.collision_count <- 0;
  t.dropped <- 0;
  t.duplicated <- 0;
  t.delayed <- 0;
  t.stalled <- 0;
  Hashtbl.reset t.by_kind
