(** Read-mostly shared state: the workload the replica protocol exists
    for.

    A set of mutable counter objects is mastered on node 0; reader
    threads on every node repeatedly invoke them with [~mode:Read].
    Without replication each such read from a remote node is a full
    remote invocation (two thread flights — the paper's Table 1 puts the
    null remote invocation at 1060 µs of latency).  With [replicate] on,
    a read-only copy of every object is installed on every node
    ({!Amber.Coherence}) and the same reads are served locally from the
    snapshot.

    Writes are interleaved between read rounds from the main thread
    (happens-before ordered by thread join, so a sanitized run is
    race-free): each write recalls every replica with an acknowledged
    invalidation round, and the caches are refreshed before the next
    round of reads. *)

type cfg = {
  objects : int;  (** shared objects, all mastered on node 0 *)
  readers_per_node : int;
  reads_per_reader : int;  (** total [~mode:Read] invocations per reader *)
  write_every : int;
      (** interleave one write round (one write per object) after every
          this many reads per reader; [0] disables writes *)
  replicate : bool;  (** install (and refresh) replicas on every node *)
}

val default_cfg : cfg

type result = {
  reads : int;  (** read invocations completed *)
  writes : int;  (** write invocations completed *)
  elapsed : float;
  read_latency : Sim.Stats.Summary.t;
      (** per-read latency, readers on non-master nodes only — the
          population that remote invocation latency dominates when
          replication is off *)
  replica_reads : int;  (** reads served from a replica snapshot *)
  remote_invocations : int;  (** remote invocations during the run *)
  checksum : int;  (** sum of final object values; must equal [writes] *)
}

(** Must be called from the program's main Amber thread. *)
val run : Amber.Runtime.t -> cfg -> result
