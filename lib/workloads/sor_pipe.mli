(** Pipelined Red/Black SOR — {!Sor_amber} restructured around
    asynchronous invocation (Amber-Async, §11 of the reproduction's
    INTERNALS).

    Same grid partitioning, same per-phase gating, same numerics —
    [result.checksum] is bit-identical to [Sor_amber]'s — but the
    per-neighbor edge-push threads are replaced by the coordinator
    issuing the boundary exchange with [Future.invoke_async]:

    - the finished edge is captured {e co-residently} into the closure
      the moment the border columns complete, then shipped on a helper
      thread while the interior computes;
    - each side runs a depth-1 pipeline (await the previous phase's
      push before issuing the next) so same-destination ghost installs
      stay ordered;
    - the end-of-iteration convergence barrier is likewise issued
      asynchronously and only awaited one iteration later, hiding the
      master round-trip behind compute.

    Only fixed-iteration mode is offered: the convergence decision
    needs the combined delta synchronously, which is exactly the
    round-trip this variant exists to hide.

    Reuses {!Sor_amber.cfg} / {!Sor_amber.default_cfg}; with
    [cfg.overlap = false] the pushes are drained before the interior
    runs (a diagnostic mode — it demotes the futures to synchronous
    RPC and should perform like non-overlapped [Sor_amber]). *)

type result = {
  iterations : int;
  checksum : float;  (** bit-identical to [Sor_amber]'s for same params *)
  compute_elapsed : float;
      (** from the post-setup ready barrier to the final barrier *)
  total_elapsed : float;
  remote_invocations : int;
  thread_migrations : int;
  async_invocations : int;  (** futures issued (edge pushes + reports) *)
}

(** Run exactly [iters] iterations.  Must be called from the program's
    main Amber thread. *)
val run :
  Amber.Runtime.t ->
  Sor_core.params ->
  ?cfg:Sor_amber.cfg ->
  iters:int ->
  unit ->
  result
