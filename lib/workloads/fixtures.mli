(** Seeded sanitizer fixtures: tiny workloads with a known verdict, used
    by the CLI ([amber_sim fixture]) and the AmberSan tests.

    Both fixtures increment a shared counter [threads × increments]
    times using a two-invocation read-modify-write protocol.  The racy
    variant runs it bare — AmberSan must report a race on ["counter"]
    (and lost updates usually make [final < expected]); the clean
    variant holds a lock across the pair — AmberSan must stay silent and
    [final = expected]. *)

type result = { final : int; expected : int }

val racy_counter : Amber.Runtime.t -> threads:int -> increments:int -> result
val clean_counter : Amber.Runtime.t -> threads:int -> increments:int -> result
