module A = Amber

type result = { final : int; expected : int }

(* Unsynchronized read-modify-write on a shared counter: each increment
   is two invocations (a declared Read, then a declared Write) with a
   compute gap between them, so concurrent increments interleave and
   updates are lost.  This is the canonical workload AmberSan must flag:
   the Read/Write steps of different threads are not ordered by any
   happens-before edge. *)
let racy_counter rt ~threads ~increments =
  let counter = A.Runtime.create_object rt ~size:16 ~name:"counter" (ref 0) in
  let worker () =
    for _ = 1 to increments do
      let v =
        A.Invoke.invoke rt ~mode:A.San_hooks.Read counter (fun c -> !c)
      in
      (* Compute based on the stale read; long enough that another
         thread's increment lands in between. *)
      Sim.Fiber.consume 200e-6;
      A.Invoke.invoke rt ~mode:A.San_hooks.Write counter (fun c -> c := v + 1)
    done
  in
  let ts =
    List.init threads (fun i ->
        A.Athread.start rt ~name:(Printf.sprintf "racy-%d" i) worker)
  in
  List.iter (fun t -> A.Athread.join rt t) ts;
  {
    final = A.Invoke.invoke rt counter (fun c -> !c);
    expected = threads * increments;
  }

(* The same two-step increment protocol, correctly ordered: the lock's
   release→acquire edges make every Read/Write pair happen after the
   previous thread's pair, so the sanitizer reports nothing and no
   update is lost. *)
let clean_counter rt ~threads ~increments =
  let counter = A.Runtime.create_object rt ~size:16 ~name:"counter" (ref 0) in
  let lock = A.Sync.Lock.create rt ~name:"counter-lock" () in
  let worker () =
    for _ = 1 to increments do
      A.Sync.Lock.with_lock rt lock (fun () ->
          let v =
            A.Invoke.invoke rt ~mode:A.San_hooks.Read counter (fun c -> !c)
          in
          Sim.Fiber.consume 200e-6;
          A.Invoke.invoke rt ~mode:A.San_hooks.Write counter (fun c ->
              c := v + 1))
    done
  in
  let ts =
    List.init threads (fun i ->
        A.Athread.start rt ~name:(Printf.sprintf "clean-%d" i) worker)
  in
  List.iter (fun t -> A.Athread.join rt t) ts;
  {
    final = A.Invoke.invoke rt counter (fun c -> !c);
    expected = threads * increments;
  }
