module A = Amber

type cfg = {
  objects : int;
  readers_per_node : int;
  reads_per_reader : int;
  write_every : int;
  replicate : bool;
}

let default_cfg =
  {
    objects = 4;
    readers_per_node = 2;
    reads_per_reader = 40;
    write_every = 10;
    replicate = true;
  }

type result = {
  reads : int;
  writes : int;
  elapsed : float;
  read_latency : Sim.Stats.Summary.t;
  replica_reads : int;
  remote_invocations : int;
  checksum : int;
}

let refresh_replicas rt objs =
  Array.iter
    (fun o -> A.Placement.replicate_everywhere rt ~copy:(fun r -> ref !r) o)
    objs

let run rt cfg =
  if cfg.objects <= 0 || cfg.readers_per_node <= 0 || cfg.reads_per_reader <= 0
  then invalid_arg "Read_mostly.run: bad configuration";
  let nodes = A.Runtime.nodes rt in
  let objs =
    Array.init cfg.objects (fun i ->
        A.Runtime.create_object rt ~size:512
          ~name:(Printf.sprintf "rm%d" i)
          (ref 0))
  in
  (* Anchors pin each reader's computation to its node, so every read is
     issued from there (remotely, unless a replica makes it local). *)
  let anchors =
    Array.init nodes (fun node ->
        let anchor =
          A.Runtime.create_object rt ~size:64
            ~name:(Printf.sprintf "rm-anchor%d" node)
            ()
        in
        if node <> 0 then A.Mobility.move_to rt anchor ~dest:node;
        anchor)
  in
  if cfg.replicate then refresh_replicas rt objs;
  let latency = Sim.Stats.Summary.create () in
  let reads = ref 0 and writes = ref 0 in
  (* [Runtime.counters] is the live mutable record: snapshot the fields. *)
  let c = A.Runtime.counters rt in
  let rr0 = c.A.Runtime.replica_reads in
  let ri0 = c.A.Runtime.remote_invocations in
  let t0 = A.Runtime.now rt in
  (* Rounds: every reader performs [per_round] reads, all readers join,
     then the main thread writes once to each object (recalling the
     replicas) and re-replicates.  The joins give the sanitizer its
     happens-before edges: reads never race the writes. *)
  let per_round =
    if cfg.write_every > 0 then min cfg.write_every cfg.reads_per_reader
    else cfg.reads_per_reader
  in
  let rounds = (cfg.reads_per_reader + per_round - 1) / per_round in
  let reader node k round () =
    A.Invoke.invoke rt anchors.(node) (fun () ->
        let base = (round * per_round) + k in
        for j = 0 to per_round - 1 do
          let o = objs.((base + j) mod cfg.objects) in
          let t = A.Runtime.now rt in
          let v = A.Invoke.invoke rt ~mode:A.San_hooks.Read o (fun r -> !r) in
          ignore (v : int);
          if node <> 0 then
            Sim.Stats.Summary.add latency (A.Runtime.now rt -. t);
          incr reads
        done)
  in
  for round = 0 to rounds - 1 do
    let threads =
      List.concat_map
        (fun node ->
          List.init cfg.readers_per_node (fun k ->
              A.Athread.start rt
                ~name:(Printf.sprintf "rm-%d.%d" node k)
                (reader node k round)))
        (List.init nodes Fun.id)
    in
    List.iter (fun t -> A.Athread.join rt t) threads;
    if cfg.write_every > 0 && round < rounds - 1 then begin
      Array.iter
        (fun o ->
          A.Invoke.invoke rt ~mode:A.San_hooks.Write o (fun r -> incr r);
          incr writes)
        objs;
      if cfg.replicate then refresh_replicas rt objs
    end
  done;
  let replica_reads = c.A.Runtime.replica_reads - rr0 in
  let remote_invocations = c.A.Runtime.remote_invocations - ri0 in
  let checksum =
    Array.fold_left
      (fun acc o -> acc + A.Invoke.invoke rt o (fun r -> !r))
      0 objs
  in
  {
    reads = !reads;
    writes = !writes;
    elapsed = A.Runtime.now rt -. t0;
    read_latency = latency;
    replica_reads;
    remote_invocations;
    checksum;
  }
