module A = Amber

type cfg = {
  cities : int;
  seed : int;
  workers_per_node : int;
  expand_cpu : float;
  centralize : bool;
  skew : bool;
}

let default_cfg =
  {
    cities = 10;
    seed = 7;
    workers_per_node = 2;
    expand_cpu = 50e-6;
    centralize = false;
    skew = false;
  }

type result = {
  best_cost : int;
  best_tour : int array;
  expansions : int;
  pruned : int;
  steals : int;
  elapsed : float;
  remote_invocations : int;
}

let validate cfg =
  if cfg.cities < 3 || cfg.cities > 13 then
    invalid_arg "Tsp: cities must be in 3..13";
  if cfg.workers_per_node <= 0 then invalid_arg "Tsp: workers"

let instance cfg =
  validate cfg;
  let rng = Sim.Rng.make (Int64.of_int (cfg.seed + 0x7557)) in
  let n = cfg.cities in
  let d = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let w = 1 + Sim.Rng.int rng 99 in
      d.(i).(j) <- w;
      d.(j).(i) <- w
    done
  done;
  d

let brute_force cfg =
  let d = instance cfg in
  let n = cfg.cities in
  let best = ref max_int in
  let rec go current visited cost depth =
    if cost < !best then
      if depth = n then best := min !best (cost + d.(current).(0))
      else
        for c = 1 to n - 1 do
          if visited land (1 lsl c) = 0 then
            go c (visited lor (1 lsl c)) (cost + d.(current).(c)) (depth + 1)
        done
  in
  go 0 1 0 1;
  !best

(* --- parallel branch and bound ------------------------------------------ *)

type subproblem = {
  tour : int list;  (* visited cities, current city first *)
  visited : int;  (* bitmask *)
  cost : int;
  depth : int;
}

type pool = { mutable items : subproblem list }

type incumbent = {
  mutable best : int;
  mutable best_tour : int array;
}

type controller = {
  mutable outstanding : int;
  mutable finished : bool;
  mutable idlers : (unit -> unit) list;
}

(* Weak but admissible lower bound: current cost plus, for the current
   city and every unvisited city, the cheapest edge leaving it toward a
   still-eligible destination. *)
let lower_bound d n sp =
  let eligible c = sp.visited land (1 lsl c) = 0 || c = 0 in
  let min_edge from_ =
    let m = ref max_int in
    for c = 0 to n - 1 do
      if c <> from_ && eligible c then
        if d.(from_).(c) < !m then m := d.(from_).(c)
    done;
    if !m = max_int then 0 else !m
  in
  let current = match sp.tour with c :: _ -> c | [] -> 0 in
  let acc = ref (min_edge current) in
  for c = 1 to n - 1 do
    if sp.visited land (1 lsl c) = 0 then acc := !acc + min_edge c
  done;
  sp.cost + !acc

(* Bytes a subproblem occupies on the wire when stolen. *)
let subproblem_bytes cfg = 16 + (8 * cfg.cities)

let run rt cfg =
  validate cfg;
  let d = instance cfg in
  let n = cfg.cities in
  let nodes = A.Runtime.nodes rt in
  let ctrs = A.Runtime.counters rt in
  let remote0 = ctrs.A.Runtime.remote_invocations in
  let pool_count = if cfg.centralize then 1 else nodes in
  let pools =
    Array.init pool_count (fun i ->
        let obj =
          A.Runtime.create_object rt ~size:4096
            ~name:(Printf.sprintf "tsp-pool%d" i)
            { items = [] }
        in
        (* [skew] leaves every pool on node 0 for the load balancer to
           sort out. *)
        if i <> 0 && not cfg.skew then A.Mobility.move_to rt obj ~dest:i;
        obj)
  in
  let incumbent_obj =
    A.Runtime.create_object rt ~size:256 ~name:"tsp-incumbent"
      { best = max_int; best_tour = [||] }
  in
  (* Per-node bound caches, co-located with the workers that read them:
     a stale bound costs extra expansions, never correctness. *)
  let caches =
    Array.init nodes (fun node ->
        let obj =
          A.Runtime.create_object rt ~size:64
            ~name:(Printf.sprintf "tsp-bound%d" node)
            (ref max_int)
        in
        if node <> 0 && not cfg.skew then A.Mobility.move_to rt obj ~dest:node;
        obj)
  in
  let controller_obj =
    A.Runtime.create_object rt ~size:128 ~name:"tsp-controller"
      { outstanding = 1; finished = false; idlers = [] }
  in
  let expansions = ref 0 and pruned = ref 0 and steals = ref 0 in
  (* Root subproblem: at city 0, nothing else visited. *)
  pools.(0).A.Aobject.state.items <-
    [ { tour = [ 0 ]; visited = 1; cost = 0; depth = 1 } ];
  let pool_of_node node = if cfg.centralize then 0 else node in
  let flush_delta delta =
    if delta <> 0 then
      A.Invoke.invoke rt controller_obj (fun c ->
          c.outstanding <- c.outstanding + delta;
          let wake_all () =
            let ws = c.idlers in
            c.idlers <- [];
            List.iter (fun wake -> wake ()) ws
          in
          if c.outstanding = 0 then begin
            c.finished <- true;
            wake_all ()
          end
          else if delta > 0 then
            (* New work appeared somewhere: let idlers re-scan. *)
            wake_all ())
  in
  let improve_incumbent tour cost =
    let improved =
      A.Invoke.invoke rt incumbent_obj (fun inc ->
          if cost < inc.best then begin
            inc.best <- cost;
            inc.best_tour <- Array.of_list (List.rev tour);
            true
          end
          else false)
    in
    if improved then
      (* Broadcast the improved bound to every node's cache. *)
      Array.iter
        (fun cache -> A.Invoke.invoke rt cache (fun b -> b := min !b cost))
        caches
  in
  let worker node w =
    A.Athread.start rt
      ~name:(Printf.sprintf "tsp-%d.%d" node w)
      (fun () ->
        let my_pool = pools.(pool_of_node node) in
        (* The worker is anchored on its node's bound cache: computation
           happens there, bound checks are member-style direct reads, and
           pool traffic is local (per-node pools) or remote (centralized
           baseline). *)
        A.Invoke.invoke rt caches.(node) (fun bound_ref ->
            let delta = ref 0 in
            let batch = ref 0 in
            let pop () =
              A.Invoke.invoke rt my_pool (fun ps ->
                  match ps.items with
                  | [] -> None
                  | x :: rest ->
                    ps.items <- rest;
                    Some x)
            in
            let push children =
              match children with
              | [] -> ()
              | cs ->
                A.Invoke.invoke rt
                  ~payload:(List.length cs * subproblem_bytes cfg)
                  my_pool
                  (fun ps -> ps.items <- cs @ ps.items)
            in
            let process sp =
              Sim.Fiber.consume cfg.expand_cpu;
              incr expansions;
              decr delta;
              if lower_bound d n sp >= !bound_ref then incr pruned
              else if sp.depth = n then begin
                let total = sp.cost + d.(List.hd sp.tour).(0) in
                if total < !bound_ref then improve_incumbent sp.tour total
              end
              else begin
                let current = List.hd sp.tour in
                let children = ref [] in
                for c = 1 to n - 1 do
                  if sp.visited land (1 lsl c) = 0 then begin
                    children :=
                      {
                        tour = c :: sp.tour;
                        visited = sp.visited lor (1 lsl c);
                        cost = sp.cost + d.(current).(c);
                        depth = sp.depth + 1;
                      }
                      :: !children;
                    incr delta
                  end
                done;
                push !children
              end
            in
            let steal () =
              let rec try_pool k =
                if k >= pool_count then false
                else begin
                  let victim = (pool_of_node node + k) mod pool_count in
                  if victim = pool_of_node node then try_pool (k + 1)
                  else begin
                    let got =
                      A.Invoke.invoke rt
                        ~return_payload:(4 * subproblem_bytes cfg)
                        pools.(victim)
                        (fun vs ->
                          let rec take acc k items =
                            if k = 0 then (acc, items)
                            else
                              match items with
                              | [] -> (acc, [])
                              | x :: rest -> take (x :: acc) (k - 1) rest
                          in
                          let stolen, rest = take [] 4 vs.items in
                          vs.items <- rest;
                          stolen)
                    in
                    match got with
                    | [] -> try_pool (k + 1)
                    | stolen ->
                      incr steals;
                      push stolen;
                      true
                  end
                end
              in
              try_pool 1
            in
            let flush () =
              let dv = !delta in
              delta := 0;
              batch := 0;
              flush_delta dv
            in
            let rec loop () =
              match pop () with
              | Some sp ->
                process sp;
                incr batch;
                (* Flush the outstanding-count delta in batches to keep
                   controller traffic off the critical path. *)
                if !batch >= 32 then flush ();
                loop ()
              | None ->
                flush ();
                if steal () then loop ()
                else begin
                  let finished =
                    A.Invoke.invoke rt controller_obj (fun c ->
                        if c.finished then true
                        else begin
                          Sim.Fiber.block (fun wake ->
                              c.idlers <- wake :: c.idlers);
                          c.finished
                        end)
                  in
                  if not finished then loop ()
                end
            in
            loop ()))
  in
  let t0 = A.Runtime.now rt in
  let threads =
    List.concat_map
      (fun node -> List.init cfg.workers_per_node (fun w -> worker node w))
      (List.init nodes Fun.id)
  in
  List.iter (fun t -> A.Athread.join rt t) threads;
  let inc = incumbent_obj.A.Aobject.state in
  {
    best_cost = inc.best;
    best_tour = inc.best_tour;
    expansions = !expansions;
    pruned = !pruned;
    steals = !steals;
    elapsed = A.Runtime.now rt -. t0;
    remote_invocations = ctrs.A.Runtime.remote_invocations - remote0;
  }
