(** Parallel branch-and-bound TSP — a second full application, exercising
    the dynamic program structure the paper's introduction motivates:
    work is generated at runtime, load is balanced by {e work stealing}
    between per-node pool objects, and a shared incumbent object carries
    the global best tour.

    Structure:
    - one {e pool} object per node holding unexplored subproblems; workers
      pop from their local pool with cheap local invocations;
    - an idle worker steals: it invokes a remote pool (one remote
      invocation moves the thread there and back with the stolen work);
    - the {e incumbent} (best tour so far) is a single object; reads are
      snooped from a locally cached bound and only improvements pay a
      remote invocation;
    - a {e controller} object performs distributed termination detection
      (outstanding-subproblem count).

    With [centralize = true] all nodes share one pool on node 0 — the
    baseline quantifying what per-node pools + stealing buy (used by the
    `ablate-locality` bench). *)

type cfg = {
  cities : int;  (** problem size (exact search; keep ≤ 13) *)
  seed : int;  (** instance generator seed *)
  workers_per_node : int;
  expand_cpu : float;  (** CPU per node expansion *)
  centralize : bool;  (** single shared pool instead of per-node pools *)
  skew : bool;
      (** pathological placement: leave the per-node pools and bound
          caches on node 0 (workers still spread) — a load-balancer
          stress input *)
}

val default_cfg : cfg

type result = {
  best_cost : int;
  best_tour : int array;
  expansions : int;
  pruned : int;
  steals : int;
  elapsed : float;
  remote_invocations : int;
}

(** Distance matrix of the instance (deterministic from [seed]). *)
val instance : cfg -> int array array

(** Exhaustive reference solution (for tests; factorial — keep cities
    small). *)
val brute_force : cfg -> int

(** Must be called from the program's main Amber thread. *)
val run : Amber.Runtime.t -> cfg -> result
