module A = Amber

(* Pipelined Red/Black SOR: the Sor_amber program restructured around
   asynchronous invocation (Amber-Async).  The numerical work, the
   section partitioning and the phase gating are identical to Sor_amber
   — the checksum is bit-for-bit the same — but the per-neighbor
   edge-push threads are gone.  Instead the coordinator captures the
   finished edge co-residently and ships it with [Future.invoke_async],
   overlapping the exchange (and the end-of-iteration convergence
   barrier) against the interior computation.  Per-side depth-1
   pipelining — await the previous phase's push future before issuing
   the next — serializes same-destination ghost installs so the
   [recv_*] max-gating stays correct. *)

type result = {
  iterations : int;
  checksum : float;
  compute_elapsed : float;
  total_elapsed : float;
  remote_invocations : int;
  thread_migrations : int;
  async_invocations : int;
}

(* --- section state (same layout and invariants as Sor_amber) ------------ *)

type section = {
  idx : int;
  rows : int;
  ncols : int;
  col0 : int;  (* global 1-based column index of local column 1 *)
  stride : int;
  cells : float array;
  mutable comp_phase : int;  (* latest phase released to workers *)
  mutable interior_release : int;  (* latest phase whose interior may run *)
  mutable border_done : int;  (* cumulative border-slice completions *)
  mutable workers_done : int;  (* cumulative phase completions *)
  mutable recv_left : int;  (* latest phase received from the left *)
  mutable recv_right : int;
  mutable delta : float;
  mutable stop : bool;
  mutable waiters : (unit -> unit) list;
}

let sync_cost rt = (A.Runtime.cost rt).A.Cost_model.lock_fast_cpu

let notify rt s =
  Sim.Fiber.consume (sync_cost rt);
  let ws = s.waiters in
  s.waiters <- [];
  List.iter (fun wake -> wake ()) ws

let rec wait_for rt s pred =
  Sim.Fiber.consume (sync_cost rt);
  if not (pred ()) then begin
    Sim.Fiber.block (fun wake -> s.waiters <- wake :: s.waiters);
    wait_for rt s pred
  end

let phase_color phase = if phase land 1 = 1 then Sor_core.Red else Sor_core.Black

let compute_range s (p : Sor_core.params) color ~c_from ~c_to =
  let pts = ref 0 and delta = ref 0.0 in
  for lc = c_from to c_to do
    let gc = s.col0 + lc - 1 in
    for r = 1 to s.rows do
      match (Sor_core.color_of ~r ~c:gc, color) with
      | Sor_core.Red, Sor_core.Red | Sor_core.Black, Sor_core.Black ->
        let i = (r * s.stride) + lc in
        let old = s.cells.(i) in
        let avg =
          (s.cells.(i - 1) +. s.cells.(i + 1) +. s.cells.(i - s.stride)
          +. s.cells.(i + s.stride))
          /. 4.0
        in
        let next = old +. (p.Sor_core.omega *. (avg -. old)) in
        s.cells.(i) <- next;
        incr pts;
        let d = Float.abs (next -. old) in
        if d > !delta then delta := d
      | Sor_core.Red, Sor_core.Black | Sor_core.Black, Sor_core.Red -> ()
    done
  done;
  (!pts, !delta)

let charge_points _rt (p : Sor_core.params) pts =
  if pts > 0 then Sim.Fiber.consume (p.Sor_core.point_cpu *. float_of_int pts)

(* --- master convergence object ------------------------------------------ *)

type master_cell = {
  mutable out : float;
  mutable cell_wake : (unit -> unit) option;
  mutable fired : bool;
}

type master = {
  parties : int;
  mutable arrived : int;
  mutable agg : float;
  mutable waiting : master_cell list;
  mutable rounds : int;
  mutable t_ready : float;
  mutable t_last : float;
}

(* Barrier-with-value body, shared by the synchronous setup round and
   the asynchronous per-iteration rounds. *)
let report_op clock delta m =
  if delta > m.agg then m.agg <- delta;
  if m.arrived + 1 >= m.parties then begin
    let value = m.agg in
    m.arrived <- 0;
    m.agg <- 0.0;
    m.rounds <- m.rounds + 1;
    let t = clock () in
    if m.rounds = 1 then m.t_ready <- t;
    m.t_last <- t;
    let cells = m.waiting in
    m.waiting <- [];
    List.iter
      (fun c ->
        c.out <- value;
        c.fired <- true;
        match c.cell_wake with Some wake -> wake () | None -> ())
      cells;
    value
  end
  else begin
    m.arrived <- m.arrived + 1;
    let c = { out = 0.0; cell_wake = None; fired = false } in
    m.waiting <- c :: m.waiting;
    Sim.Fiber.block (fun wake ->
        if c.fired then wake () else c.cell_wake <- Some wake);
    c.out
  end

let report rt master_obj clock delta =
  A.Invoke.invoke rt master_obj (report_op clock delta)

let report_async rt master_obj clock delta =
  A.Future.invoke_async rt master_obj (report_op clock delta)

(* --- worker body (identical numerics to Sor_amber's) --------------------- *)

let compute_border_rows s (p : Sor_core.params) color ~lc ~r_from ~r_to =
  let pts = ref 0 and delta = ref 0.0 in
  let gc = s.col0 + lc - 1 in
  for r = r_from to r_to do
    match (Sor_core.color_of ~r ~c:gc, color) with
    | Sor_core.Red, Sor_core.Red | Sor_core.Black, Sor_core.Black ->
      let i = (r * s.stride) + lc in
      let old = s.cells.(i) in
      let avg =
        (s.cells.(i - 1) +. s.cells.(i + 1) +. s.cells.(i - s.stride)
        +. s.cells.(i + s.stride))
        /. 4.0
      in
      let next = old +. (p.Sor_core.omega *. (avg -. old)) in
      s.cells.(i) <- next;
      incr pts;
      let d = Float.abs (next -. old) in
      if d > !delta then delta := d
    | Sor_core.Red, Sor_core.Black | Sor_core.Black, Sor_core.Red -> ()
  done;
  (!pts, !delta)

let worker_body rt p (cfg : Sor_amber.cfg) sec_obj ~w () =
  A.Invoke.invoke rt sec_obj (fun s ->
      let nworkers = cfg.Sor_amber.workers_per_section in
      let rec loop next =
        wait_for rt s (fun () -> s.stop || s.comp_phase >= next);
        if not s.stop then begin
          let color = phase_color next in
          let r_from = 1 + (w * s.rows / nworkers) in
          let r_to = (w + 1) * s.rows / nworkers in
          if r_to >= r_from then begin
            let border_cols = if s.ncols = 1 then [ 1 ] else [ 1; s.ncols ] in
            List.iter
              (fun lc ->
                let pts, d =
                  compute_border_rows s p color ~lc ~r_from ~r_to
                in
                charge_points rt p pts;
                if d > s.delta then s.delta <- d)
              border_cols
          end;
          s.border_done <- s.border_done + 1;
          notify rt s;
          wait_for rt s (fun () -> s.stop || s.interior_release >= next);
          if not s.stop then begin
            let lo = 2 and hi = s.ncols - 1 in
            let width = hi - lo + 1 in
            if width > 0 then begin
              let c_from = lo + (w * width / nworkers) in
              let c_to = lo + (((w + 1) * width / nworkers) - 1) in
              if c_to >= c_from then begin
                let pts, d = compute_range s p color ~c_from ~c_to in
                charge_points rt p pts;
                if d > s.delta then s.delta <- d
              end
            end;
            s.workers_done <- s.workers_done + 1;
            notify rt s;
            loop (next + 1)
          end
        end
      in
      loop 1)

(* --- coordinator: async edge pushes and pipelined barrier ---------------- *)

let coordinator_op rt p (cfg : Sor_amber.cfg) master_obj clock sec_objs
    ~iters i =
  let nsections = Array.length sec_objs in
  let has_left = i > 0 and has_right = i < nsections - 1 in
  let nworkers = cfg.Sor_amber.workers_per_section in
  fun s ->
      let workers =
        List.init nworkers (fun w ->
            A.Athread.start rt
              ~name:(Printf.sprintf "sorp%d-w%d" i w)
              (worker_body rt p cfg sec_objs.(i) ~w))
      in
      (* Setup barrier stays synchronous: timing starts when every
         section is ready. *)
      ignore (report rt master_obj clock 0.0 : float);
      (* Per-side depth-1 pipeline state. *)
      let prev_left : unit A.Future.t option ref = ref None in
      let prev_right : unit A.Future.t option ref = ref None in
      let prev_report : float A.Future.t option ref = ref None in
      let push_edge side phase =
        (* Serialize same-side installs: only after the previous push
           landed may a newer one overwrite the neighbor's ghost slots,
           keeping the recv_* max-gating truthful. *)
        let prev = match side with `Left -> prev_left | `Right -> prev_right in
        (match !prev with Some f -> A.Future.await rt f | None -> ());
        let color = phase_color phase in
        let local_col = match side with `Left -> 1 | `Right -> s.ncols in
        let neighbor_obj =
          match side with
          | `Left -> sec_objs.(i - 1)
          | `Right -> sec_objs.(i + 1)
        in
        (* Capture the edge while co-resident — the closure carries the
           values, so the next phase may overwrite the border freely. *)
        let gc = s.col0 + local_col - 1 in
        let vals = ref [] in
        for r = s.rows downto 1 do
          match (Sor_core.color_of ~r ~c:gc, color) with
          | Sor_core.Red, Sor_core.Red | Sor_core.Black, Sor_core.Black ->
            vals := (r, s.cells.((r * s.stride) + local_col)) :: !vals
          | Sor_core.Red, Sor_core.Black | Sor_core.Black, Sor_core.Red -> ()
        done;
        let vals = !vals in
        let payload = 8 * List.length vals in
        prev :=
          Some
            (A.Future.invoke_async rt ~payload neighbor_obj (fun ns ->
                 let ghost_col =
                   match side with `Left -> ns.ncols + 1 | `Right -> 0
                 in
                 List.iter
                   (fun (r, v) -> ns.cells.((r * ns.stride) + ghost_col) <- v)
                   vals;
                 (match side with
                 | `Left -> ns.recv_right <- max ns.recv_right phase
                 | `Right -> ns.recv_left <- max ns.recv_left phase);
                 let ws = ns.waiters in
                 ns.waiters <- [];
                 List.iter (fun wake -> wake ()) ws))
      in
      let do_phase phase =
        wait_for rt s (fun () ->
            ((not has_left) || s.recv_left >= phase - 1)
            && ((not has_right) || s.recv_right >= phase - 1));
        s.comp_phase <- phase;
        notify rt s;
        wait_for rt s (fun () -> s.border_done >= nworkers * phase);
        (* Edges complete: ship them without blocking the interior. *)
        if has_left then push_edge `Left phase;
        if has_right then push_edge `Right phase;
        if not cfg.Sor_amber.overlap then begin
          (* Degenerate (diagnostic) mode: drain the exchange before the
             interior, like Sor_amber with overlap off. *)
          (match !prev_left with
          | Some f -> A.Future.await rt f
          | None -> ());
          match !prev_right with
          | Some f -> A.Future.await rt f
          | None -> ()
        end;
        s.interior_release <- phase;
        notify rt s;
        wait_for rt s (fun () -> s.workers_done >= nworkers * phase)
      in
      for it = 1 to iters do
        do_phase (((it - 1) * 2) + 1);
        do_phase (((it - 1) * 2) + 2);
        let delta = s.delta in
        s.delta <- 0.0;
        (* Pipelined convergence barrier: overlap round [it] against the
           next iteration's compute, awaiting it only before joining
           round [it + 1] — so rounds never interleave at the master. *)
        (match !prev_report with
        | Some f -> ignore (A.Future.await rt f : float)
        | None -> ());
        prev_report := Some (report_async rt master_obj clock delta)
      done;
      (* Drain the pipeline before tearing the section down. *)
      (match !prev_left with Some f -> A.Future.await rt f | None -> ());
      (match !prev_right with Some f -> A.Future.await rt f | None -> ());
      (match !prev_report with
      | Some f -> ignore (A.Future.await rt f : float)
      | None -> ());
      s.stop <- true;
      notify rt s;
      ignore (A.Athread.join_all rt workers : unit list);
      iters

(* --- top level ----------------------------------------------------------- *)

let make_section (p : Sor_core.params) ~idx ~ncols ~col0 ~is_first ~is_last =
  let stride = ncols + 2 in
  let cells = Array.make ((p.Sor_core.rows + 2) * stride) 0.0 in
  for c = 0 to ncols + 1 do
    cells.(c) <- p.Sor_core.top;
    cells.(((p.Sor_core.rows + 1) * stride) + c) <- p.Sor_core.bottom
  done;
  if is_first then
    for r = 1 to p.Sor_core.rows do
      cells.(r * stride) <- p.Sor_core.left
    done;
  if is_last then
    for r = 1 to p.Sor_core.rows do
      cells.((r * stride) + ncols + 1) <- p.Sor_core.right
    done;
  {
    idx;
    rows = p.Sor_core.rows;
    ncols;
    col0;
    stride;
    cells;
    comp_phase = 0;
    interior_release = 0;
    border_done = 0;
    workers_done = 0;
    recv_left = 0;
    recv_right = 0;
    delta = 0.0;
    stop = false;
    waiters = [];
  }

let run rt (p : Sor_core.params) ?cfg ~iters () =
  if iters <= 0 then invalid_arg "Sor_pipe: iterations";
  let cfg = match cfg with Some c -> c | None -> Sor_amber.default_cfg rt in
  if cfg.Sor_amber.sections <= 0 || cfg.Sor_amber.sections > p.Sor_core.cols
  then invalid_arg "Sor_pipe.run: bad section count";
  let ctrs = A.Runtime.counters rt in
  let remote0 = ctrs.A.Runtime.remote_invocations in
  let migr0 = ctrs.A.Runtime.thread_migrations in
  let async0 = ctrs.A.Runtime.async_invocations in
  let t0 = A.Runtime.now rt in
  let clock () = A.Runtime.now rt in
  let master_state =
    {
      parties = cfg.Sor_amber.sections;
      arrived = 0;
      agg = 0.0;
      waiting = [];
      rounds = 0;
      t_ready = 0.0;
      t_last = 0.0;
    }
  in
  let master_obj =
    A.Runtime.create_object rt ~size:128 ~name:"sorp-master" master_state
  in
  let nsections = cfg.Sor_amber.sections in
  let base = p.Sor_core.cols / nsections in
  let rem = p.Sor_core.cols mod nsections in
  let widths =
    Array.init nsections (fun i -> base + (if i < rem then 1 else 0))
  in
  let sec_objs =
    Array.init nsections (fun i ->
        let col0 = 1 + Array.fold_left ( + ) 0 (Array.sub widths 0 i) in
        let state =
          make_section p ~idx:i ~ncols:widths.(i) ~col0 ~is_first:(i = 0)
            ~is_last:(i = nsections - 1)
        in
        let size = 8 * Array.length state.cells in
        A.Runtime.create_object rt ~size
          ~name:(Printf.sprintf "sorp-section%d" i)
          state)
  in
  let nodes = A.Runtime.nodes rt in
  let place =
    match cfg.Sor_amber.placement with
    | Some f -> f
    | None -> fun i -> i * nodes / nsections
  in
  (* Overlapped distribution: Sor_amber ships the sections one blocking
     move at a time, serializing the whole-object transfers (and their
     locate round trips) on the main thread.  Here each move runs on its
     own helper thread, so the transfer latencies overlap and setup
     costs roughly one move plus the shared-wire serialization instead
     of their sum. *)
  let movers =
    Array.to_list sec_objs
    |> List.mapi (fun i obj ->
           let dest = place i in
           if dest < 0 || dest >= nodes then
             invalid_arg "Sor_pipe.run: placement outside the cluster";
           if dest <> 0 then
             Some
               (A.Athread.start rt
                  ~name:(Printf.sprintf "sorp%d-mover" i)
                  (fun () -> A.Mobility.move_to rt obj ~dest))
           else None)
    |> List.filter_map Fun.id
  in
  ignore (A.Athread.join_all rt movers : unit list);
  (* Each coordinator is itself an asynchronous invocation on its
     section.  Besides being the natural phrasing, this keeps the
     teardown path clean: joining a thread that migrated away pays a
     locate chase over its forwarding chain (§3.4), whereas a future
     resolves home with a single notify datagram. *)
  let coords =
    Array.mapi
      (fun i _ ->
        A.Future.invoke_async rt sec_objs.(i)
          (coordinator_op rt p cfg master_obj clock sec_objs ~iters i))
      sec_objs
  in
  let iteration_counts = A.Future.await_all rt (Array.to_list coords) in
  List.iter
    (fun n ->
      if n <> iters then failwith "Sor_pipe: coordinator iteration mismatch")
    iteration_counts;
  let checksum = ref 0.0 in
  for r = 1 to p.Sor_core.rows do
    Array.iter
      (fun obj ->
        let s = obj.A.Aobject.state in
        for lc = 1 to s.ncols do
          checksum := !checksum +. s.cells.((r * s.stride) + lc)
        done)
      sec_objs
  done;
  {
    iterations = iters;
    checksum = !checksum;
    compute_elapsed = master_state.t_last -. master_state.t_ready;
    total_elapsed = A.Runtime.now rt -. t0;
    remote_invocations = ctrs.A.Runtime.remote_invocations - remote0;
    thread_migrations = ctrs.A.Runtime.thread_migrations - migr0;
    async_invocations = ctrs.A.Runtime.async_invocations - async0;
  }
