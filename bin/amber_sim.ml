(* amber_sim — command-line driver for the Amber reproduction.

   Subcommands:
     sor        run Red/Black SOR (amber | ivy | seq) with custom parameters
     workqueue  run the distributed work-queue workload
     matmul     run the replicated matrix multiply
     trace      run a small scenario with protocol tracing and dump it

   Examples:
     amber_sim sor --nodes 8 --cpus 4 --iters 20
     amber_sim sor --system ivy --nodes 4 --rows 32 --cols 64
     amber_sim workqueue --items 400 --move-at 150
     amber_sim trace *)

open Cmdliner

let nodes_arg =
  Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Cluster nodes.")

let cpus_arg =
  Arg.(value & opt int 4 & info [ "cpus"; "p" ] ~docv:"P" ~doc:"CPUs per node.")

(* --- fault injection (shared by every subcommand) ------------------------ *)

let stall_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ n; f; u ] -> (
      try
        Ok
          {
            Hw.Ethernet.node = int_of_string (String.trim n);
            from_t = float_of_string (String.trim f);
            until_t = float_of_string (String.trim u);
          }
      with _ -> Error (`Msg "stall: expected NODE:FROM:UNTIL"))
    | _ -> Error (`Msg "stall: expected NODE:FROM:UNTIL")
  in
  let print ppf (s : Hw.Ethernet.stall) =
    Format.fprintf ppf "%d:%g:%g" s.Hw.Ethernet.node s.Hw.Ethernet.from_t
      s.Hw.Ethernet.until_t
  in
  Arg.conv (parse, print)

let faults_term =
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P" ~doc:"Per-packet loss probability, [0,1).")
  in
  let dup =
    Arg.(
      value & opt float 0.0
      & info [ "dup" ] ~docv:"P"
          ~doc:"Per-packet duplicate-delivery probability, [0,1).")
  in
  let delay_prob =
    Arg.(
      value & opt float 0.0
      & info [ "delay-prob" ] ~docv:"P"
          ~doc:"Per-packet latency-spike probability, [0,1).")
  in
  let delay_spike =
    Arg.(
      value & opt float 10e-3
      & info [ "delay-spike" ] ~docv:"SECONDS"
          ~doc:"Extra delivery latency on a spike (default 10 ms).")
  in
  let stalls =
    Arg.(
      value
      & opt_all stall_conv []
      & info [ "stall" ] ~docv:"NODE:FROM:UNTIL"
          ~doc:
            "Hold packets arriving at NODE between virtual times FROM and \
             UNTIL (seconds); repeatable.")
  in
  let mk drop_prob dup_prob delay_prob delay_spike stalls =
    { Hw.Ethernet.drop_prob; dup_prob; delay_prob; delay_spike; stalls }
  in
  Term.(const mk $ drop $ dup $ delay_prob $ delay_spike $ stalls)

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sim-seed" ] ~docv:"S"
        ~doc:
          "Simulation seed (also seeds the fault pattern; same seed, same \
           faults).")

(* --- crash injection (shared by every subcommand) ------------------------ *)

let crash_conv =
  (* NODE@T[:RESTART]; times are virtual seconds and accept a trailing
     "s" (e.g. 3@0.2s:0.6s). *)
  let seconds s =
    let s = String.trim s in
    let n = String.length s in
    let s = if n > 0 && s.[n - 1] = 's' then String.sub s 0 (n - 1) else s in
    float_of_string s
  in
  let parse s =
    match String.index_opt s '@' with
    | None -> Error (`Msg "crash: expected NODE@T[:RESTART]")
    | Some i -> (
      try
        let cnode = int_of_string (String.trim (String.sub s 0 i)) in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match String.split_on_char ':' rest with
        | [ t ] -> Ok { Amber.Config.cnode; at = seconds t; restart = None }
        | [ t; r ] ->
          Ok { Amber.Config.cnode; at = seconds t; restart = Some (seconds r) }
        | _ -> Error (`Msg "crash: expected NODE@T[:RESTART]")
      with _ -> Error (`Msg "crash: expected NODE@T[:RESTART]"))
  in
  let print ppf (c : Amber.Config.crash) =
    match c.Amber.Config.restart with
    | None ->
      Format.fprintf ppf "%d@@%g" c.Amber.Config.cnode c.Amber.Config.at
    | Some r ->
      Format.fprintf ppf "%d@@%g:%g" c.Amber.Config.cnode c.Amber.Config.at r
  in
  Arg.conv (parse, print)

let crashes_term =
  let crashes =
    Arg.(
      value
      & opt_all crash_conv []
      & info [ "crash" ] ~docv:"NODE@T[:RESTART]"
          ~doc:
            "Crash NODE at virtual time T (seconds; values may carry a \
             trailing \"s\").  With :RESTART the outage is transient — the \
             node freezes, drops its packets, and resumes at RESTART.  \
             Without it the crash is fail-stop: the node's threads and \
             unreplicated objects are lost and replicated objects are \
             re-mastered on a surviving replica.  Repeatable; at most one \
             crash per node, and node 0 is not crashable.")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "crash-rate" ] ~docv:"P"
          ~doc:
            "Probabilistic crash mode: each node > 0 independently suffers \
             one transient crash with probability P, at a seed-derived \
             virtual time (same seed, same crashes).")
  in
  let mk crashes rate = (crashes, rate) in
  Term.(const mk $ crashes $ rate)

let mk_config nodes cpus faults seed (crashes, crash_rate) =
  if nodes <= 0 || cpus <= 0 then failwith "nodes and cpus must be positive";
  let seed =
    match seed with
    | Some s -> Int64.of_int s
    | None -> Amber.Config.default.Amber.Config.seed
  in
  Amber.Config.make ~nodes ~cpus ~seed ~faults ~crashes ~crash_rate ()

(* --- sanitizer (shared by every subcommand) ------------------------------ *)

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Run under AmberSan: report data races, lock-order cycles and \
           coherence drift; exit 3 on any finding.")

(* --- load balancing (shared by sor and tsp) ------------------------------ *)

let balance_term =
  let policy =
    let policy_conv =
      Arg.enum
        [
          ("off", Balance.Rebalancer.Off);
          ("steal_only", Balance.Rebalancer.Steal_only);
          ("affinity", Balance.Rebalancer.Affinity);
          ("hybrid", Balance.Rebalancer.Hybrid);
        ]
    in
    Arg.(
      value
      & opt policy_conv Balance.Rebalancer.Off
      & info [ "balance" ] ~docv:"POLICY"
          ~doc:
            "Adaptive placement policy: $(b,off), $(b,steal_only), \
             $(b,affinity) or $(b,hybrid) (affinity + load spreading).")
  in
  let steal =
    Arg.(
      value & flag
      & info [ "steal" ]
          ~doc:
            "Let idle nodes steal runnable unbound threads from loaded \
             peers (implied by --balance=steal_only).")
  in
  let gossip =
    Arg.(
      value & opt float 10e-3
      & info [ "gossip-interval" ] ~docv:"SECONDS"
          ~doc:"Load-board gossip / steal tick period (default 10 ms).")
  in
  let mk policy steal gossip_interval =
    { Balance.Driver.default_cfg with policy; steal; gossip_interval }
  in
  Term.(const mk $ policy $ steal $ gossip)

(* Bracket a workload body with the load-balancing subsystem.  With the
   default cfg the handle is inert and the run is untouched. *)
let with_balance rt bal f =
  let lb = Balance.Driver.start rt bal in
  let r = f () in
  Balance.Driver.stop lb;
  r

(* Attach AmberSan around a cluster run when requested.  Returns the
   workload result plus the exit status (3 on findings). *)
let run_cluster ~sanitize cfg f =
  let san = ref None in
  let r =
    Amber.Cluster.run_value cfg (fun rt ->
        if sanitize then san := Some (Analysis.Ambersan.attach rt);
        f rt)
  in
  let status =
    match !san with
    | None -> 0
    | Some s ->
      let rep = Analysis.Ambersan.finalize s in
      Format.printf "%a" Analysis.Ambersan.pp_report rep;
      if Analysis.Ambersan.failed rep then 3 else 0
  in
  (r, status)

(* --- profiling (shared by sor and the profile subcommand) ----------------- *)

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable causal span tracing and print the virtual-time profile \
           and critical-path decomposition after the run.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Write the span trace as Chrome trace-event JSON (loadable in \
           Perfetto) to $(docv).  Implies $(b,--profile).")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Like [run_cluster], but optionally attach the span profiler to the main
   thread and seal it when the workload body returns (so the measured
   region excludes teardown). *)
let run_profiled ~profile ~sanitize cfg f =
  let prof_box = ref None in
  let r, status =
    run_cluster ~sanitize cfg (fun rt ->
        let prof = if profile then Some (Scope.Profile.attach rt) else None in
        prof_box := prof;
        let r = f rt in
        Option.iter Scope.Profile.seal prof;
        r)
  in
  (r, status, !prof_box)

(* Print the profile section and critical-path decomposition; export the
   Chrome trace if [out] was given.  [counters] merges watch time series
   into the export as Perfetto counter tracks. *)
let finish_profile ?(counters = []) ~out prof =
  List.iter print_endline (Scope.Profile.report_lines prof);
  Format.printf "%a" Scope.Critical_path.pp (Scope.Profile.critical_path prof);
  match out with
  | None -> ()
  | Some path ->
    let spans = Scope.Profile.spans prof in
    write_file path
      (Scope.Export.chrome_json ~counters ~clip:(Scope.Profile.total prof)
         spans);
    Printf.printf "wrote %s (%d spans)\n" path (List.length spans)

(* --- watch (continuous telemetry; shared by sor, serve and watch) --------- *)

let slo_conv =
  let parse s =
    match Watch.Slo.parse s with Ok r -> Ok r | Error e -> Error (`Msg e)
  in
  let print ppf (r : Watch.Slo.rule) =
    Format.pp_print_string ppf r.Watch.Slo.text
  in
  Arg.conv (parse, print)

type watch_opts = {
  w_on : bool;
  w_interval : float;
  w_out : string option;
  w_csv : string option;
  w_slo : Watch.Slo.rule list;
  w_flight : string option;
}

let watch_term =
  let watch_flag =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Enable continuous telemetry: sample the scheduler, RPC, \
             replication, balance and serve instruments on a recurring \
             virtual-time tick into bounded time series, summarized in the \
             report's $(b,watch:) section and exportable with \
             $(b,--watch-out) / $(b,--watch-csv).")
  in
  let interval =
    Arg.(
      value & opt float 5e-3
      & info [ "watch-interval" ] ~docv:"SECONDS"
          ~doc:"Sampling tick period, virtual seconds (default 5 ms).")
  in
  let watch_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "watch-out" ] ~docv:"FILE"
          ~doc:
            "Write every sampled series to $(docv) as JSON Lines (one \
             series object per line).  Implies $(b,--watch).")
  in
  let watch_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "watch-csv" ] ~docv:"FILE"
          ~doc:
            "Write every sampled series to $(docv) as long-format CSV \
             (series,node,kind,time_s,value).  Implies $(b,--watch).")
  in
  let slo =
    Arg.(
      value
      & opt_all slo_conv []
      & info [ "slo" ] ~docv:"RULE"
          ~doc:
            "Multi-window SLO burn-rate rule over a sampled series, e.g. \
             $(b,serve.latency_ms.p99<=60) or \
             $(b,serve.latency_ms.rate>=800\\@0.2) (\\@BUDGET is the \
             allowed bad-sample fraction, default 0.1).  The run exits 4 \
             when both the short and the long trailing windows burn the \
             budget at rate >= 1.  Repeatable; implies $(b,--watch).")
  in
  let flight =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"DIR"
          ~doc:
            "Arm the failure flight recorder: on any typed failure (node \
             death, object loss, first overload shed, sanitizer finding) \
             dump a postmortem JSON artifact — the trailing trace window \
             plus the victim node's final spans — under $(docv).")
  in
  let mk watch interval out csv slo flight =
    {
      w_on = watch || out <> None || csv <> None || slo <> [];
      w_interval = interval;
      w_out = out;
      w_csv = csv;
      w_slo = slo;
      w_flight = flight;
    }
  in
  Term.(const mk $ watch_flag $ interval $ watch_out $ watch_csv $ slo $ flight)

(* Bracket a workload body with the watch subsystem: flight recorder
   first (so failure hooks are live for the whole run), then the
   sampling tick, stopped before the body returns so the engine can
   quiesce.  With every option off nothing attaches and the run is
   untouched. *)
let with_watch rt w f =
  let flight =
    Option.map (fun dir -> Watch.Flight.attach rt ~dir ()) w.w_flight
  in
  if not w.w_on then begin
    let r = f () in
    (r, None, flight)
  end
  else begin
    let cfg = { Watch.default_cfg with Watch.interval = w.w_interval } in
    let t = Watch.attach rt ~cfg ~slo:w.w_slo ?flight () in
    let r = f () in
    Watch.stop t;
    (r, Some t, flight)
  end

let watch_counters = function Some t -> Watch.series t | None -> []

(* Print SLO verdicts and the flight-recorder summary, export the series,
   and fold an SLO burn into the exit status as 4 (the sanitizer's 3
   takes precedence). *)
let finish_watch w (watch, flight) status =
  let status = ref status in
  (match watch with
  | None -> ()
  | Some t ->
    let series = Watch.series t in
    (match w.w_out with
    | Some path ->
      write_file path
        (String.concat ""
           (List.map (fun l -> l ^ "\n") (Scope.Export.series_jsonl series)));
      Printf.printf "wrote %s (%d series)\n" path (List.length series)
    | None -> ());
    (match w.w_csv with
    | Some path ->
      write_file path (Scope.Export.series_csv series);
      Printf.printf "wrote %s (%d series)\n" path (List.length series)
    | None -> ());
    let outcomes = Watch.outcomes t in
    List.iter (fun o -> print_endline (Watch.Slo.outcome_line o)) outcomes;
    if Watch.Slo.any_fired outcomes && !status = 0 then status := 4);
  (match flight with
  | None -> ()
  | Some f -> List.iter print_endline (Watch.Flight.report_lines f));
  !status

(* --- sor ---------------------------------------------------------------- *)

let sor_cmd =
  let system =
    Arg.(
      value
      & opt (enum [ ("amber", `Amber); ("ivy", `Ivy); ("seq", `Seq) ]) `Amber
      & info [ "system" ] ~docv:"SYSTEM"
          ~doc:"Implementation to run: $(b,amber), $(b,ivy) or $(b,seq).")
  in
  let rows =
    Arg.(value & opt int 122 & info [ "rows" ] ~docv:"R" ~doc:"Grid rows.")
  in
  let cols =
    Arg.(value & opt int 842 & info [ "cols" ] ~docv:"C" ~doc:"Grid columns.")
  in
  let iters =
    Arg.(value & opt int 10 & info [ "iters"; "i" ] ~docv:"I" ~doc:"Iterations.")
  in
  let sections =
    Arg.(
      value
      & opt (some int) None
      & info [ "sections" ] ~docv:"S" ~doc:"Section count (amber only).")
  in
  let no_overlap =
    Arg.(
      value & flag
      & info [ "no-overlap" ]
          ~doc:"Disable overlapping of edge exchange with computation.")
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ] ~doc:"Print per-node utilization and protocol counters.")
  in
  let skew =
    Arg.(
      value & flag
      & info [ "skew" ]
          ~doc:
            "Pathological placement: create every section on node 0 \
             (amber only; a load-balancer stress input).")
  in
  let async_flag =
    Arg.(
      value & flag
      & info [ "async" ]
          ~doc:
            "Run the pipelined variant (amber only): futures-based edge \
             exchange and convergence barrier overlapping the interior \
             computation.")
  in
  let coalesce_window =
    Arg.(
      value
      & opt (some float) None
      & info [ "coalesce-window" ] ~docv:"SECONDS"
          ~doc:
            "Enable wire-level datagram coalescing with the given flush \
             window (e.g. 200e-6).")
  in
  let run nodes cpus faults seed crash system rows cols iters sections no_overlap
      report skew async coalesce bal sanitize profile out w =
    let profile = profile || out <> None in
    let p = Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows ~cols in
    let cfg = mk_config nodes cpus faults seed crash in
    let cfg =
      match coalesce with
      | Some w when w > 0.0 ->
        {
          cfg with
          Amber.Config.rpc_coalesce =
            Some { Topaz.Rpc.default_coalesce with Topaz.Rpc.flush_window = w };
        }
      | Some _ | None -> cfg
    in
    let seq_pred = Workloads.Sor_seq.predicted_elapsed p ~iters in
    let maybe_report rt =
      if report then
        Format.printf "@.%a" Amber.Stats_report.pp
          (Amber.Stats_report.capture rt)
    in
    let maybe_profile wh prof =
      match prof with
      | None -> ()
      | Some prof -> finish_profile ~counters:(watch_counters wh) ~out prof
    in
    match system with
    | `Seq ->
      let (r, wh, fl), status, prof =
        run_profiled ~profile ~sanitize cfg (fun rt ->
            let rwf =
              with_watch rt w (fun () -> Workloads.Sor_seq.run rt p ~iters)
            in
            maybe_report rt;
            rwf)
      in
      Printf.printf "sequential: %d iterations in %.3f virtual s (checksum %.6g)\n"
        r.Workloads.Sor_seq.iterations r.Workloads.Sor_seq.compute_elapsed
        r.Workloads.Sor_seq.checksum;
      maybe_profile wh prof;
      finish_watch w (wh, fl) status
    | `Amber ->
      let mk_sor_cfg rt =
        let c = Workloads.Sor_amber.default_cfg rt in
        let c =
          match sections with
          | Some s -> { c with Workloads.Sor_amber.sections = s }
          | None -> c
        in
        let c =
          if skew then
            { c with Workloads.Sor_amber.placement = Some (fun _ -> 0) }
          else c
        in
        { c with Workloads.Sor_amber.overlap = not no_overlap }
      in
      if async then begin
        let (r, wh, fl), status, prof =
          run_profiled ~profile ~sanitize cfg (fun rt ->
              let c = mk_sor_cfg rt in
              let rwf =
                with_watch rt w (fun () ->
                    with_balance rt bal (fun () ->
                        Workloads.Sor_pipe.run rt p ~cfg:c ~iters ()))
              in
              maybe_report rt;
              rwf)
        in
        Printf.printf
          "amber-async %dNx%dP: compute %.3f virtual s, speedup %.2f, \
           checksum %.6g\n"
          nodes cpus r.Workloads.Sor_pipe.compute_elapsed
          (seq_pred /. r.Workloads.Sor_pipe.compute_elapsed)
          r.Workloads.Sor_pipe.checksum;
        Printf.printf
          "  remote invocations: %d, thread migrations: %d, async \
           invocations: %d\n"
          r.Workloads.Sor_pipe.remote_invocations
          r.Workloads.Sor_pipe.thread_migrations
          r.Workloads.Sor_pipe.async_invocations;
        maybe_profile wh prof;
        finish_watch w (wh, fl) status
      end
      else begin
        let (r, wh, fl), status, prof =
          run_profiled ~profile ~sanitize cfg (fun rt ->
              let c = mk_sor_cfg rt in
              let rwf =
                with_watch rt w (fun () ->
                    with_balance rt bal (fun () ->
                        Workloads.Sor_amber.run rt p ~cfg:c ~iters ()))
              in
              maybe_report rt;
              rwf)
        in
        Printf.printf
          "amber %dNx%dP: compute %.3f virtual s, speedup %.2f, checksum %.6g\n"
          nodes cpus r.Workloads.Sor_amber.compute_elapsed
          (seq_pred /. r.Workloads.Sor_amber.compute_elapsed)
          r.Workloads.Sor_amber.checksum;
        Printf.printf "  remote invocations: %d, thread migrations: %d\n"
          r.Workloads.Sor_amber.remote_invocations
          r.Workloads.Sor_amber.thread_migrations;
        maybe_profile wh prof;
        finish_watch w (wh, fl) status
      end
    | `Ivy ->
      let (r, wh, fl), status, prof =
        run_profiled ~profile ~sanitize cfg (fun rt ->
            let rwf =
              with_watch rt w (fun () -> Workloads.Sor_ivy.run rt p ~iters ())
            in
            maybe_report rt;
            rwf)
      in
      Printf.printf
        "ivy %dNx%dP: compute %.3f virtual s, speedup %.2f, checksum %.6g\n"
        nodes cpus r.Workloads.Sor_ivy.compute_elapsed
        (seq_pred /. r.Workloads.Sor_ivy.compute_elapsed)
        r.Workloads.Sor_ivy.checksum;
      Printf.printf "  faults: %d read, %d write; invalidations: %d; %d bytes\n"
        r.Workloads.Sor_ivy.read_faults r.Workloads.Sor_ivy.write_faults
        r.Workloads.Sor_ivy.invalidations r.Workloads.Sor_ivy.transfer_bytes;
      maybe_profile wh prof;
      finish_watch w (wh, fl) status
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term $ system
      $ rows $ cols $ iters $ sections $ no_overlap $ report_flag $ skew
      $ async_flag $ coalesce_window $ balance_term $ sanitize_arg
      $ profile_flag $ out_arg $ watch_term)
  in
  Cmd.v (Cmd.info "sor" ~doc:"Run Red/Black SOR (the paper's §6 application).")
    term

(* --- workqueue ----------------------------------------------------------- *)

let workqueue_cmd =
  let items =
    Arg.(value & opt int 200 & info [ "items" ] ~docv:"N" ~doc:"Work items.")
  in
  let batch =
    Arg.(value & opt int 4 & info [ "batch" ] ~docv:"B" ~doc:"Items per fetch.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"W" ~doc:"Worker threads per node.")
  in
  let move_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "move-at" ] ~docv:"K"
          ~doc:"Migrate the queue after K items are taken.")
  in
  let run nodes cpus faults seed crash items batch workers move_at report sanitize =
    let cfg = mk_config nodes cpus faults seed crash in
    let r, status =
      run_cluster ~sanitize cfg (fun rt ->
          let r =
            Workloads.Work_queue.run rt
              {
                Workloads.Work_queue.items;
                work_cpu = 10e-3;
                batch;
                workers_per_node = workers;
                move_queue_at = move_at;
              }
          in
          if report then
            Format.printf "@.%a" Amber.Stats_report.pp
              (Amber.Stats_report.capture rt);
          r)
    in
    Printf.printf "processed %d items in %.3f virtual s\n"
      r.Workloads.Work_queue.processed r.Workloads.Work_queue.elapsed;
    Array.iteri
      (fun node count -> Printf.printf "  node %d: %d items\n" node count)
      r.Workloads.Work_queue.per_node;
    Printf.printf "queue finished on node %d\n"
      r.Workloads.Work_queue.queue_final_node;
    status
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:"Print per-node utilization and protocol counters.")
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term $ items
      $ batch $ workers $ move_at $ report_flag $ sanitize_arg)
  in
  Cmd.v
    (Cmd.info "workqueue" ~doc:"Run the distributed work-queue workload.")
    term

(* --- matmul -------------------------------------------------------------- *)

let matmul_cmd =
  let n =
    Arg.(value & opt int 96 & info [ "size" ] ~docv:"N" ~doc:"Matrix dimension.")
  in
  let block =
    Arg.(value & opt int 24 & info [ "block" ] ~docv:"B" ~doc:"Block edge.")
  in
  let no_replicate =
    Arg.(
      value & flag
      & info [ "no-replicate" ]
          ~doc:"Keep A and B on node 0 instead of replicating.")
  in
  let run nodes cpus faults seed crash n block no_replicate sanitize =
    let cfg = mk_config nodes cpus faults seed crash in
    let mcfg =
      {
        Workloads.Matmul.n;
        block;
        replicate = not no_replicate;
        workers_per_node = cpus;
        flop_cpu = 5e-6;
      }
    in
    let want = Workloads.Matmul.reference_checksum mcfg in
    let r, status =
      run_cluster ~sanitize cfg (fun rt -> Workloads.Matmul.run rt mcfg)
    in
    let ok = Float.abs (r.Workloads.Matmul.checksum -. want) <= 1e-6 *. want in
    Printf.printf
      "matmul %dx%d (%s): %.3f virtual s, %d remote invocations, %d copies %s\n"
      n n
      (if no_replicate then "no replication" else "replicated inputs")
      r.Workloads.Matmul.elapsed r.Workloads.Matmul.remote_invocations
      r.Workloads.Matmul.copies
      (if ok then "(correct)" else "(WRONG)");
    status
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term $ n $ block
      $ no_replicate $ sanitize_arg)
  in
  Cmd.v (Cmd.info "matmul" ~doc:"Run the replicated matrix multiply.") term

(* --- tsp ----------------------------------------------------------------- *)

let tsp_cmd =
  let cities =
    Arg.(value & opt int 10 & info [ "cities" ] ~docv:"C" ~doc:"Problem size (3-13).")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Instance seed.")
  in
  let central =
    Arg.(
      value & flag
      & info [ "central" ] ~doc:"One shared pool instead of per-node pools.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Verify the result against brute force (slow).")
  in
  let skew =
    Arg.(
      value & flag
      & info [ "skew" ]
          ~doc:
            "Pathological placement: leave the per-node pools and bound \
             caches on node 0 (a load-balancer stress input).")
  in
  let run nodes cpus faults sim_seed crash cities seed central check skew bal
      sanitize =
    let cfg = mk_config nodes cpus faults sim_seed crash in
    let tcfg =
      {
        Workloads.Tsp.cities;
        seed;
        workers_per_node = cpus;
        expand_cpu = 50e-6;
        centralize = central;
        skew;
      }
    in
    let r, status =
      run_cluster ~sanitize cfg (fun rt ->
          with_balance rt bal (fun () -> Workloads.Tsp.run rt tcfg))
    in
    Printf.printf
      "tsp %d cities (%s): best tour cost %d in %.3f virtual s\n"
      cities
      (if central then "central pool" else "per-node pools")
      r.Workloads.Tsp.best_cost r.Workloads.Tsp.elapsed;
    Printf.printf "  tour: %s\n"
      (String.concat " -> "
         (Array.to_list (Array.map string_of_int r.Workloads.Tsp.best_tour)));
    Printf.printf "  %d expansions, %d pruned, %d steals, %d remote invocations\n"
      r.Workloads.Tsp.expansions r.Workloads.Tsp.pruned r.Workloads.Tsp.steals
      r.Workloads.Tsp.remote_invocations;
    if check then begin
      let want = Workloads.Tsp.brute_force tcfg in
      Printf.printf "  brute force says %d: %s\n" want
        (if want = r.Workloads.Tsp.best_cost then "OPTIMAL" else "WRONG")
    end;
    status
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term $ cities
      $ seed $ central $ check $ skew $ balance_term $ sanitize_arg)
  in
  Cmd.v
    (Cmd.info "tsp" ~doc:"Run parallel branch-and-bound TSP with work stealing.")
    term

(* --- readmostly ----------------------------------------------------------- *)

let readmostly_cmd =
  let objects =
    Arg.(
      value & opt int 4
      & info [ "objects" ] ~docv:"N" ~doc:"Shared objects (mastered on node 0).")
  in
  let readers =
    Arg.(
      value & opt int 2
      & info [ "readers" ] ~docv:"R" ~doc:"Reader threads per node.")
  in
  let reads =
    Arg.(
      value & opt int 40
      & info [ "reads" ] ~docv:"K" ~doc:"Read invocations per reader.")
  in
  let write_every =
    Arg.(
      value & opt int 10
      & info [ "write-every" ] ~docv:"K"
          ~doc:
            "One write round (one write per object) after every K reads per \
             reader; 0 disables writes.")
  in
  let replicate =
    Arg.(
      value & flag
      & info [ "replicate" ]
          ~doc:
            "Install a read replica of every object on every node (and \
             refresh after each write round).")
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:"Print per-node utilization and protocol counters.")
  in
  let run nodes cpus faults seed crash objects readers reads write_every replicate
      report sanitize =
    let cfg = mk_config nodes cpus faults seed crash in
    let r, status =
      run_cluster ~sanitize cfg (fun rt ->
          let r =
            Workloads.Read_mostly.run rt
              {
                Workloads.Read_mostly.objects;
                readers_per_node = readers;
                reads_per_reader = reads;
                write_every;
                replicate;
              }
          in
          if report then
            Format.printf "@.%a" Amber.Stats_report.pp
              (Amber.Stats_report.capture rt);
          r)
    in
    Printf.printf
      "read-mostly (%s): %d reads, %d writes in %.3f virtual s (checksum %d)\n"
      (if replicate then "replicated" else "no replication")
      r.Workloads.Read_mostly.reads r.Workloads.Read_mostly.writes
      r.Workloads.Read_mostly.elapsed r.Workloads.Read_mostly.checksum;
    Printf.printf "  replica reads: %d, remote invocations: %d\n"
      r.Workloads.Read_mostly.replica_reads
      r.Workloads.Read_mostly.remote_invocations;
    let lat = r.Workloads.Read_mostly.read_latency in
    if Sim.Stats.Summary.count lat > 0 then
      Printf.printf "  remote-node read latency: mean %.1f us, p95 %.1f us\n"
        (Sim.Stats.Summary.mean lat *. 1e6)
        (Sim.Stats.Summary.percentile lat 95.0 *. 1e6);
    status
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term $ objects
      $ readers $ reads $ write_every $ replicate $ report_flag
      $ sanitize_arg)
  in
  Cmd.v
    (Cmd.info "readmostly"
       ~doc:
         "Run the read-mostly workload (read replicas vs remote invocations).")
    term

(* --- serve --------------------------------------------------------------- *)

let burst_conv =
  (* FACTOR:ON:OFF — on-phase rate multiplier plus mean on/off phase
     lengths in virtual seconds. *)
  let parse s =
    match String.split_on_char ':' s with
    | [ f; on; off ] -> (
      try Ok (float_of_string f, float_of_string on, float_of_string off)
      with _ -> Error (`Msg "burst: expected FACTOR:ON:OFF"))
    | _ -> Error (`Msg "burst: expected FACTOR:ON:OFF")
  in
  let print ppf (f, on, off) = Format.fprintf ppf "%g:%g:%g" f on off in
  Arg.conv (parse, print)

let mix_conv =
  (* read=W,write=W,compute=W (any subset; missing classes get weight 0). *)
  let parse s =
    try
      let mix =
        List.fold_left
          (fun m part ->
            match String.split_on_char '=' (String.trim part) with
            | [ "read"; w ] ->
              { m with Serve.Trafficgen.read = float_of_string w }
            | [ "write"; w ] ->
              { m with Serve.Trafficgen.write = float_of_string w }
            | [ "compute"; w ] ->
              { m with Serve.Trafficgen.compute = float_of_string w }
            | _ -> raise Exit)
          { Serve.Trafficgen.read = 0.0; write = 0.0; compute = 0.0 }
          (String.split_on_char ',' s)
      in
      Ok mix
    with _ -> Error (`Msg "classes: expected read=W,write=W,compute=W")
  in
  let print ppf (m : Serve.Trafficgen.mix) =
    Format.fprintf ppf "read=%g,write=%g,compute=%g" m.Serve.Trafficgen.read
      m.Serve.Trafficgen.write m.Serve.Trafficgen.compute
  in
  Arg.conv (parse, print)

(* Execute a serve scenario and print its summary (shared by the serve and
   watch subcommands). *)
let exec_serve ~nodes ~cfg ~scfg ~report ~bal ~sanitize ~profile ~out w =
  let profile = profile || out <> None in
  let (r, wh, fl), status, prof =
    run_profiled ~profile ~sanitize cfg (fun rt ->
        let rwf =
          with_watch rt w (fun () ->
              with_balance rt bal (fun () -> Serve.run rt scfg))
        in
        if report then
          Format.printf "%a@." Amber.Stats_report.pp
            (Amber.Stats_report.capture rt);
        rwf)
  in
  Printf.printf
    "serve (%s, %d nodes): issued %d, completed %d, rejected %d, failed %d \
     in %.3f virtual s\n"
    (match scfg.Serve.arrival with
    | Serve.Trafficgen.Poisson r -> Printf.sprintf "poisson %.0f rps" r
    | Serve.Trafficgen.Bursty b ->
      Printf.sprintf "bursty %.0fx%.0f rps" b.rate
        b.factor)
    nodes r.Serve.issued r.Serve.completed r.Serve.rejected
    r.Serve.failed r.Serve.elapsed;
  Printf.printf "  goodput %.1f rps, reject %.1f%%\n" r.Serve.goodput_rps
    (100.0 *. r.Serve.reject_frac);
  let lat = r.Serve.latency in
  if Sim.Stats.Summary.count lat > 0 then
    Printf.printf "  admitted latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n"
      (Sim.Stats.Summary.percentile lat 50.0 *. 1e3)
      (Sim.Stats.Summary.percentile lat 95.0 *. 1e3)
      (Sim.Stats.Summary.percentile lat 99.0 *. 1e3);
  List.iter
    (fun (st : Serve.class_stats) ->
      Printf.printf "  %-7s issued %d, ok %d, rej %d, fail %d\n"
        (Serve.Trafficgen.cls_name st.Serve.cls)
        st.Serve.issued st.Serve.completed st.Serve.rejected
        st.Serve.failed)
    r.Serve.per_class;
  Option.iter
    (fun p -> finish_profile ~counters:(watch_counters wh) ~out p)
    prof;
  finish_watch w (wh, fl) status

let serve_cmd =
  let rps =
    Arg.(
      value & opt float 400.0
      & info [ "rps" ] ~docv:"RATE"
          ~doc:
            "Mean arrival rate, requests per virtual second (off-phase rate \
             when $(b,--burst) is given).")
  in
  let burst =
    Arg.(
      value
      & opt (some burst_conv) None
      & info [ "burst" ] ~docv:"FACTOR:ON:OFF"
          ~doc:
            "Bursty (Markov-modulated Poisson) arrivals: multiply the rate \
             by FACTOR during exponential on-phases of mean length ON \
             seconds, separated by off-phases of mean length OFF.")
  in
  let zipf =
    Arg.(
      value & opt float 1.0
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Zipf exponent of the key popularity skew (0 = uniform).")
  in
  let objects =
    Arg.(
      value & opt int 64
      & info [ "objects" ] ~docv:"N"
          ~doc:"Service objects; key $(i,k) homes on node $(i,k) mod nodes.")
  in
  let duration =
    Arg.(
      value & opt float 0.5
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Traffic window, virtual seconds.")
  in
  let classes =
    Arg.(
      value
      & opt mix_conv Serve.Trafficgen.default_mix
      & info [ "classes" ] ~docv:"MIX"
          ~doc:
            "Request class mix as read=W,write=W,compute=W relative \
             weights (default read=0.7,write=0.2,compute=0.1).")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Service worker threads per node.")
  in
  let admission =
    Arg.(
      value & flag
      & info [ "admission" ]
          ~doc:
            "Enable per-class admission control (token bucket + queue-depth \
             cutoff) on every node; overload is shed as typed rejections \
             instead of queueing without bound.")
  in
  let admit_rate =
    Arg.(
      value & opt float 0.0
      & info [ "admit-rate" ] ~docv:"RATE"
          ~doc:
            "Aggregate admission token rate per node (req/s), split across \
             classes by mix weight; 0 derives it from the node's nominal \
             service capacity.")
  in
  let admit_burst =
    Arg.(
      value & opt float 4.0
      & info [ "admit-burst" ] ~docv:"TOKENS"
          ~doc:"Per-class token bucket capacity.")
  in
  let cutoff =
    Arg.(
      value & opt int 8
      & info [ "cutoff" ] ~docv:"N"
          ~doc:"Per-node admitted-but-unfinished request cutoff.")
  in
  let replicate =
    Arg.(
      value & flag
      & info [ "replicate" ]
          ~doc:"Replicate every service object on every node.")
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Print the full cluster report (including the per-class \
             $(b,serve:) section) after the run.")
  in
  let run nodes cpus faults seed crash rps burst zipf objects duration classes
      workers admission admit_rate admit_burst cutoff replicate report bal
      sanitize profile out w =
    let cfg = mk_config nodes cpus faults seed crash in
    let arrival =
      match burst with
      | None -> Serve.Trafficgen.Poisson rps
      | Some (factor, on_mean, off_mean) ->
        Serve.Trafficgen.Bursty { rate = rps; factor; on_mean; off_mean }
    in
    let scfg =
      {
        Serve.default_cfg with
        arrival;
        duration;
        keys = objects;
        skew = zipf;
        mix = classes;
        workers_per_node = workers;
        replicate;
        admission =
          (if admission then
             Some { Serve.admit_rate; admit_burst; cutoff }
           else None);
      }
    in
    exec_serve ~nodes ~cfg ~scfg ~report ~bal ~sanitize ~profile ~out w
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term
      $ rps $ burst $ zipf $ objects $ duration $ classes $ workers $ admission
      $ admit_rate $ admit_burst $ cutoff $ replicate $ report_flag
      $ balance_term $ sanitize_arg $ profile_flag $ out_arg $ watch_term)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve open-loop traffic (Poisson or bursty, Zipf-skewed, mixed \
          read/write/compute) with per-class SLO reporting and optional \
          admission control.")
    term

(* --- watch (one-command telemetry smoke over serve) ----------------------- *)

let watch_cmd =
  let rps =
    Arg.(
      value & opt float 400.0
      & info [ "rps" ] ~docv:"RATE"
          ~doc:
            "Mean arrival rate, requests per virtual second (push it past \
             capacity to watch the SLO monitors trip).")
  in
  let duration =
    Arg.(
      value & opt float 0.5
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Traffic window, virtual seconds.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Service worker threads per node.")
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Print the full cluster report (including the $(b,watch:) \
             series summary) after the run.")
  in
  let run nodes cpus faults seed crash rps duration workers report bal sanitize
      profile out w =
    let cfg = mk_config nodes cpus faults seed crash in
    (* Telemetry is the point of this subcommand: force the tick on and,
       with no explicit rules, watch the canonical serving objective. *)
    let default_rules =
      List.filter_map
        (fun s -> Result.to_option (Watch.Slo.parse s))
        [ "serve.latency_ms.p99<=60" ]
    in
    let w =
      {
        w with
        w_on = true;
        w_slo = (if w.w_slo = [] then default_rules else w.w_slo);
      }
    in
    let scfg =
      {
        Serve.default_cfg with
        arrival = Serve.Trafficgen.Poisson rps;
        duration;
        workers_per_node = workers;
        admission =
          Some { Serve.admit_rate = 0.0; admit_burst = 4.0; cutoff = 8 };
      }
    in
    exec_serve ~nodes ~cfg ~scfg ~report ~bal ~sanitize ~profile ~out w
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term
      $ rps $ duration $ workers $ report_flag $ balance_term $ sanitize_arg
      $ profile_flag $ out_arg $ watch_term)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Run an admission-controlled serve scenario under continuous \
          telemetry: sampled time series, a default p99 latency SLO \
          burn-rate monitor (exit 4 when it fires), and optional series \
          exports / flight recorder.")
    term

(* --- trace --------------------------------------------------------------- *)

let trace_cmd =
  let limit =
    Arg.(
      value & opt int 60
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum records to print.")
  in
  let category =
    Arg.(
      value
      & opt (some string) None
      & info [ "category" ] ~docv:"CAT"
          ~doc:
            "Only records of this category (create, migrate, move, net, \
             sched).")
  in
  let lint_flag =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Record sanitizer events during the run and lint the trace \
             offline with AmberSan afterwards.  Findings are reported on \
             stdout and the exit status is 3, exactly like an online \
             $(b,--sanitize) run; a clean trace exits 0.")
  in
  let variant =
    Arg.(
      value
      & opt (enum [ ("racy", `Racy); ("clean", `Clean) ]) `Clean
      & info [ "variant" ] ~docv:"V"
          ~doc:
            "Which scenario to trace: $(b,clean) (lock-ordered increments, \
             lints clean) or $(b,racy) (the same increments with the lock \
             removed, so $(b,--lint) must flag the Read/Write races and \
             exit 3).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the selected records as JSON Lines on stdout (one object \
             per record) instead of the human-readable listing.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Also collect causal spans during the run and write them to \
             $(docv) as Chrome trace-event JSON (loadable in Perfetto).")
  in
  let run nodes cpus faults seed crash limit category lint json out variant =
    let cfg = mk_config nodes cpus faults seed crash in
    let rt_box = ref None in
    let () =
      Amber.Cluster.run_value cfg (fun rt ->
          rt_box := Some rt;
          Sim.Trace.set_enabled (Amber.Runtime.trace rt) true;
          if out <> None || lint then
            Sim.Span.set_enabled (Amber.Runtime.spans rt) true;
          if lint then
            (* Record the "san" event stream without online analysis. *)
            ignore (Analysis.Ambersan.attach ~analyze:false rt : Analysis.Ambersan.t);
          let counter = Amber.Api.create rt ~name:"counter" (ref 0) in
          Amber.Api.move_to rt counter ~dest:(min 1 (nodes - 1));
          let lock = Amber.Sync.Lock.create rt () in
          (* The racy variant runs the same two-step increment without the
             lock: the Read and Write steps of different workers carry no
             happens-before edge, which offline lint must flag. *)
          let increment =
            match variant with
            | `Clean ->
              fun () ->
                Amber.Sync.Lock.with_lock rt lock (fun () ->
                    Amber.Api.invoke rt counter (fun c -> incr c))
            | `Racy ->
              fun () ->
                let v =
                  Amber.Invoke.invoke rt ~mode:Amber.San_hooks.Read counter
                    (fun c -> !c)
                in
                Sim.Fiber.consume 200e-6;
                Amber.Invoke.invoke rt ~mode:Amber.San_hooks.Write counter
                  (fun c -> c := v + 1)
          in
          let ts =
            List.init 3 (fun i ->
                Amber.Api.start rt ~name:(Printf.sprintf "w%d" i) (fun () ->
                    for _ = 1 to 3 do
                      increment ()
                    done))
          in
          List.iter (fun t -> Amber.Api.join rt t) ts)
    in
    match !rt_box with
    | None -> 0
    | Some rt ->
      let trace = Amber.Runtime.trace rt in
      let records =
        match category with
        | None -> Sim.Trace.records trace
        | Some c -> Sim.Trace.by_category trace c
      in
      let total = List.length records in
      if json then
        List.iteri
          (fun i r ->
            if i < limit then
              print_endline (Scope.Export.trace_record_json r))
          records
      else begin
        Printf.printf "protocol trace (%d records, showing up to %d):\n" total
          limit;
        List.iteri
          (fun i r ->
            if i < limit then
              Format.printf "%a@." Sim.Trace.pp_record r)
          records
      end;
      (match out with
      | None -> ()
      | Some path ->
        let spans = Sim.Span.spans (Amber.Runtime.spans rt) in
        write_file path (Scope.Export.chrome_json spans);
        if not json then
          Printf.printf "wrote %s (%d spans)\n" path (List.length spans));
      if lint then begin
        let rep = Analysis.Ambersan.lint_trace (Sim.Trace.records trace) in
        Format.printf "offline lint: %a" Analysis.Ambersan.pp_report rep;
        let span_findings =
          Analysis.Spanlint.lint (Sim.Span.spans (Amber.Runtime.spans rt))
        in
        (match span_findings with
        | [] -> print_endline "span balance: OK"
        | fs ->
          Printf.printf "span balance: %d findings\n" (List.length fs);
          List.iter (fun f -> print_endline ("  " ^ f)) fs);
        if Analysis.Ambersan.failed rep || span_findings <> [] then 3 else 0
      end
      else 0
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term $ limit
      $ category $ lint_flag $ json_flag $ trace_out $ variant)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a small scenario with protocol tracing enabled and dump it.")
    term

(* --- profile -------------------------------------------------------------- *)

let profile_cmd =
  let workload =
    Arg.(
      value
      & pos 0 (enum [ ("sor", `Sor) ]) `Sor
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to profile (currently $(b,sor)).")
  in
  let rows =
    Arg.(value & opt int 122 & info [ "rows" ] ~docv:"R" ~doc:"Grid rows.")
  in
  let cols =
    Arg.(value & opt int 842 & info [ "cols" ] ~docv:"C" ~doc:"Grid columns.")
  in
  let iters =
    Arg.(value & opt int 10 & info [ "iters"; "i" ] ~docv:"I" ~doc:"Iterations.")
  in
  let jsonl_flag =
    Arg.(
      value & flag
      & info [ "jsonl" ]
          ~doc:"Also dump every span as one JSON object per line on stdout.")
  in
  let run nodes cpus faults seed crash workload rows cols iters out jsonl =
    let cfg = mk_config nodes cpus faults seed crash in
    match workload with
    | `Sor ->
      let p =
        Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows ~cols
      in
      let r, status, prof =
        run_profiled ~profile:true ~sanitize:false cfg (fun rt ->
            Workloads.Sor_amber.run rt p ~iters ())
      in
      let prof = Option.get prof in
      Printf.printf "amber %dNx%dP: compute %.3f virtual s, checksum %.6g\n"
        nodes cpus r.Workloads.Sor_amber.compute_elapsed
        r.Workloads.Sor_amber.checksum;
      finish_profile ~out prof;
      if jsonl then
        List.iter print_endline
          (Scope.Export.spans_jsonl ~clip:(Scope.Profile.total prof)
             (Scope.Profile.spans prof));
      status
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term $ workload
      $ rows $ cols $ iters $ out_arg $ jsonl_flag)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload under the span profiler: per-operation latency \
          summaries, per-node busy/blocked attribution and a critical-path \
          decomposition of the main thread's elapsed time.")
    term

(* --- fixture ------------------------------------------------------------- *)

let fixture_cmd =
  let variant =
    Arg.(
      value
      & opt (enum [ ("racy", `Racy); ("clean", `Clean) ]) `Racy
      & info [ "variant" ] ~docv:"V"
          ~doc:
            "Which counter fixture to run: $(b,racy) (unsynchronized \
             read-modify-write, AmberSan must flag it) or $(b,clean) (the \
             same protocol under a lock).")
  in
  let threads =
    Arg.(
      value & opt int 4
      & info [ "threads" ] ~docv:"T" ~doc:"Incrementing threads.")
  in
  let increments =
    Arg.(
      value & opt int 25
      & info [ "increments" ] ~docv:"K" ~doc:"Increments per thread.")
  in
  let run nodes cpus faults seed crash variant threads increments sanitize =
    let cfg = mk_config nodes cpus faults seed crash in
    let (r : Workloads.Fixtures.result), status =
      run_cluster ~sanitize cfg (fun rt ->
          match variant with
          | `Racy -> Workloads.Fixtures.racy_counter rt ~threads ~increments
          | `Clean -> Workloads.Fixtures.clean_counter rt ~threads ~increments)
    in
    Printf.printf "counter: %d of %d expected increments%s\n"
      r.Workloads.Fixtures.final r.Workloads.Fixtures.expected
      (if r.Workloads.Fixtures.final = r.Workloads.Fixtures.expected then ""
       else " (updates lost)");
    status
  in
  let term =
    Term.(
      const run $ nodes_arg $ cpus_arg $ faults_term $ seed_arg $ crashes_term $ variant
      $ threads $ increments $ sanitize_arg)
  in
  Cmd.v
    (Cmd.info "fixture"
       ~doc:"Run a seeded sanitizer fixture (racy or clean shared counter).")
    term

(* --- check (schedule-space model checking) -------------------------------- *)

let check_cmd =
  let fixture_arg =
    let names =
      "all" :: List.map Analysis.Modelcheck.fixture_name Analysis.Modelcheck.fixtures
    in
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"FIXTURE"
          ~doc:
            (Printf.sprintf
               "Protocol fixture to check: %s.  $(b,all) runs every fixture."
               (String.concat ", " names)))
  in
  let max_schedules =
    Arg.(
      value & opt int 4000
      & info [ "max-schedules" ] ~docv:"N"
          ~doc:"Stop after exploring N schedules (complete plus truncated).")
  in
  let max_depth =
    Arg.(
      value & opt int 3000
      & info [ "max-depth" ] ~docv:"D"
          ~doc:
            "Abandon any single execution after D decision points (bounds \
             retransmission-timer storms).")
  in
  let fault_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-budget" ] ~docv:"K"
          ~doc:
            "Per-execution budget of non-deliver fault choices (drop or \
             duplicate); default is the fixture's own.")
  in
  let schedule_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule-out" ] ~docv:"FILE"
          ~doc:"Write the counterexample schedule (if any) to $(docv).")
  in
  let schedule_in =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule-in" ] ~docv:"FILE"
          ~doc:
            "Skip exploration: replay the schedule in $(docv) against the \
             (single) fixture and report that one execution's verdict.")
  in
  let mutate =
    (* deliberately undocumented: re-introduces known-fixed bugs so CI can
       assert the checker still finds them *)
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"BUG" ~docs:"HIDDEN OPTIONS")
  in
  let random =
    Arg.(
      value
      & opt (some int) None
      & info [ "random" ] ~docv:"SEED"
          ~doc:
            "Random-walk mode: instead of systematic DFS with partial-order \
             reduction, draw every decision uniformly at random \
             (deterministically, from $(docv)).  Samples deep reorderings \
             that DFS only reaches one race reversal at a time; \
             counterexamples stay replayable.")
  in
  let run fixture max_schedules max_depth fault_budget schedule_out
      schedule_in mutate random =
    let mutation =
      match mutate with
      | None -> None
      | Some m -> (
        match Analysis.Modelcheck.mutation_of_string m with
        | Some m -> Some m
        | None ->
          failwith
            (Printf.sprintf "unknown mutation %S (known: %s)" m
               (String.concat ", " Analysis.Modelcheck.mutation_names)))
    in
    let resolve name =
      match Analysis.Modelcheck.find_fixture name with
      | Some f -> f
      | None ->
        failwith
          (Printf.sprintf "unknown fixture %S (known: %s)" name
             (String.concat ", "
                (List.map Analysis.Modelcheck.fixture_name
                   Analysis.Modelcheck.fixtures)))
    in
    let fixtures =
      match fixture with
      | "all" -> Analysis.Modelcheck.fixtures
      | name -> [ resolve name ]
    in
    let fixtures =
      match mutation with
      | None -> fixtures
      | Some m -> List.map (Analysis.Modelcheck.apply_mutation m) fixtures
    in
    match schedule_in with
    | Some path -> (
      let fx =
        match fixtures with
        | [ f ] -> f
        | _ -> failwith "--schedule-in needs a single named fixture"
      in
      match Analysis.Schedule.load path with
      | Error e -> failwith e
      | Ok sched -> (
        Printf.printf "replaying %d recorded decisions against %s:\n"
          (List.length sched)
          (Analysis.Modelcheck.fixture_name fx);
        match Analysis.Modelcheck.replay ~max_depth fx sched with
        | [] ->
          print_endline "replay: no violation";
          0
        | violations ->
          List.iter (fun v -> Printf.printf "  VIOLATION: %s\n" v) violations;
          3))
    | None ->
      let status = ref 0 in
      List.iter
        (fun fx ->
          let name = Analysis.Modelcheck.fixture_name fx in
          Printf.printf "checking %s (%s)...\n%!" name
            (Analysis.Modelcheck.fixture_descr fx);
          let o =
            match random with
            | Some seed ->
              Analysis.Modelcheck.fuzz ~max_schedules ~max_depth ?fault_budget
                ~seed fx
            | None ->
              Analysis.Modelcheck.explore ~max_schedules ~max_depth
                ?fault_budget fx
          in
          List.iter
            (fun l -> print_endline ("  " ^ l))
            (Analysis.Modelcheck.stats_lines o.Analysis.Modelcheck.stats);
          match o.Analysis.Modelcheck.counterexample with
          | None -> Printf.printf "  %s: no violation found\n" name
          | Some (sched, violations) ->
            status := 3;
            List.iter
              (fun v -> Printf.printf "  VIOLATION: %s\n" v)
              violations;
            Printf.printf "  counterexample (%d decisions):\n"
              (List.length sched);
            Format.printf "%a" Analysis.Schedule.pp sched;
            (match schedule_out with
            | None -> ()
            | Some path ->
              Analysis.Schedule.save
                ~comments:
                  [
                    Printf.sprintf "fixture: %s" name;
                    Printf.sprintf "violations: %s"
                      (String.concat " | " violations);
                  ]
                path sched;
              Printf.printf
                "  schedule written to %s (replay with: amber_sim check %s \
                 --schedule-in %s)\n"
                path name path))
        fixtures;
      !status
  in
  let term =
    Term.(
      const run $ fixture_arg $ max_schedules $ max_depth $ fault_budget
      $ schedule_out $ schedule_in $ mutate $ random)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check a protocol fixture: systematically explore the \
          schedule space (event, fiber and fault choices) with \
          partial-order reduction, auditing every execution with AmberSan \
          plus terminal invariants.  Exit 3 with a replayable \
          counterexample schedule on any violation.")
    term

let () =
  let doc = "Amber: parallel programming on a network of multiprocessors" in
  let info = Cmd.info "amber_sim" ~version:"1.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ sor_cmd; workqueue_cmd; matmul_cmd; tsp_cmd; readmostly_cmd;
            serve_cmd; watch_cmd; trace_cmd; profile_cmd; fixture_cmd;
            check_cmd ]))
